"""Topology serialization: load/store POP-level maps as JSON.

Lets users describe their own backbone (or export a generated one) and
run the full scenario stack against it, instead of the built-in
generators.  The format is deliberately plain::

    {
      "routers": [{"name": "pop0", "loopback": "10.255.0.1"}, ...],
      "links": [
        {"a": "pop0", "b": "pop1", "cost": 2, "cost_ba": 3,
         "propagation_delay": 0.004, "capacity_bps": 622080000.0},
        ...
      ]
    }

Router entries may also be bare strings (loopbacks auto-assigned).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.net.addr import IPv4Address
from repro.routing.topology import Link, Topology, TopologyError


class TopologyFileError(ValueError):
    """Raised for malformed topology files."""


def topology_from_dict(payload: dict[str, Any]) -> Topology:
    """Build a :class:`Topology` from its dict form."""
    if not isinstance(payload, dict):
        raise TopologyFileError("topology document must be an object")
    routers = payload.get("routers")
    links = payload.get("links")
    if not isinstance(routers, list) or not routers:
        raise TopologyFileError("'routers' must be a non-empty list")
    if not isinstance(links, list):
        raise TopologyFileError("'links' must be a list")

    topology = Topology()
    for entry in routers:
        if isinstance(entry, str):
            topology.add_router(entry)
            continue
        if not isinstance(entry, dict) or "name" not in entry:
            raise TopologyFileError(f"bad router entry: {entry!r}")
        loopback = entry.get("loopback")
        topology.add_router(
            entry["name"],
            loopback=IPv4Address.parse(loopback) if loopback else None,
        )

    for entry in links:
        if not isinstance(entry, dict):
            raise TopologyFileError(f"bad link entry: {entry!r}")
        try:
            a, b = entry["a"], entry["b"]
        except KeyError as missing:
            raise TopologyFileError(
                f"link entry missing {missing}: {entry!r}"
            ) from None
        try:
            link = topology.add_link(
                a,
                b,
                cost=int(entry.get("cost", 1)),
                cost_ba=(int(entry["cost_ba"])
                         if "cost_ba" in entry else None),
                propagation_delay=float(
                    entry.get("propagation_delay", 0.001)
                ),
                capacity_bps=float(
                    entry.get("capacity_bps", 622_080_000.0)
                ),
                max_queue_delay=float(entry.get("max_queue_delay", 0.5)),
            )
        except TopologyError as error:
            raise TopologyFileError(str(error)) from error
        if entry.get("up") is False:
            link.up = False
    return topology


def topology_to_dict(topology: Topology) -> dict[str, Any]:
    """A :class:`Topology` as its JSON-ready dict form (round-trips)."""
    return {
        "routers": [
            {"name": name, "loopback": str(topology.loopback(name))}
            for name in topology.routers
        ],
        "links": [
            {
                "a": link.a,
                "b": link.b,
                "cost": link.cost,
                **({"cost_ba": link.cost_ba}
                   if link.cost_ba is not None else {}),
                "propagation_delay": link.propagation_delay,
                "capacity_bps": link.capacity_bps,
                "max_queue_delay": link.max_queue_delay,
                **({} if link.up else {"up": False}),
            }
            for link in topology.links
        ],
    }


def load_topology(path: str | Path) -> Topology:
    """Read a topology from a JSON file."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise TopologyFileError(f"invalid JSON in {path}: {error}") from error
    return topology_from_dict(payload)


def save_topology(topology: Topology, path: str | Path) -> None:
    """Write a topology to a JSON file."""
    Path(path).write_text(
        json.dumps(topology_to_dict(topology), indent=2) + "\n"
    )
