"""Workload generator: Poisson packet arrivals into the forwarding engine.

Each arrival draws a category from the traffic mix, a flow from the pool,
an entry TTL from the TTL model, and a size from a trimodal packet-size
distribution, then injects the packet at a weighted-random ingress router.
The generator keeps exactly one pending arrival event, so memory stays
flat regardless of trace length.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.packet import (
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    IcmpHeader,
    IPv4Header,
    Packet,
    TcpHeader,
    UdpHeader,
)
from repro.routing.forwarding import ForwardingEngine
from repro.traffic.flows import FlowPool, PrefixPopulation
from repro.traffic.mix import DEFAULT_MIX, PacketCategory, TrafficMix
from repro.traffic.ttl import DEFAULT_TTL_MODEL, InitialTtlModel


class GeneratorError(ValueError):
    """Raised for invalid generator configuration."""


#: Classic trimodal backbone packet sizes: (payload bytes above IP, weight).
#: 40/576/1500-byte wire sizes dominate real mixes.
_SIZE_MODES: tuple[tuple[int, float], ...] = ((0, 0.45), (536, 0.30), (1460, 0.25))

#: Multicast groups used for the MULTICAST category.
_MCAST_GROUPS = tuple(
    IPv4Address.parse(addr) for addr in
    ("224.2.127.254", "224.0.1.1", "233.2.171.1", "239.255.255.250")
)


@dataclass(slots=True)
class GeneratorStats:
    """Counters the generator keeps while running."""

    packets: int = 0
    by_category: dict[PacketCategory, int] | None = None

    def __post_init__(self) -> None:
        if self.by_category is None:
            self.by_category = {}

    def count(self, category: PacketCategory) -> None:
        self.packets += 1
        self.by_category[category] = self.by_category.get(category, 0) + 1


class WorkloadGenerator:
    """Feeds a Poisson packet stream into a forwarding engine.

    With ``connection_aware=True`` (the default) the generator closes the
    loop the paper describes for looped traffic (Sec. V-B): when a TCP
    flow's packet is lost, the flow's connection is considered broken —
    subsequent packets for it are SYN retries (and, with some
    probability, a diagnostic ICMP echo) until a SYN is delivered again.
    During a routing loop, flows to the affected prefix keep re-SYNing
    into the loop, which is exactly why the paper finds SYN and ICMP
    over-represented among looped packets (Fig. 6).
    """

    def __init__(
        self,
        engine: ForwardingEngine,
        population: PrefixPopulation,
        rate_pps: float,
        rng: random.Random | None = None,
        mix: TrafficMix = DEFAULT_MIX,
        ttl_model: InitialTtlModel = DEFAULT_TTL_MODEL,
        n_flows: int = 2000,
        ingress_weights: dict[str, float] | None = None,
        connection_aware: bool = True,
        ping_on_loss_probability: float = 0.4,
        break_probability: float = 0.35,
    ) -> None:
        if rate_pps <= 0:
            raise GeneratorError(f"rate must be positive: {rate_pps}")
        self.engine = engine
        self.population = population
        self.rate_pps = rate_pps
        self.rng = rng or random.Random(0)
        self.mix = mix
        self.ttl_model = ttl_model
        self.flows = FlowPool(population, n_flows=n_flows, rng=self.rng)
        self.stats = GeneratorStats()
        self._draw_category = mix.sampler(self.rng)
        self.connection_aware = connection_aware
        self.ping_on_loss_probability = ping_on_loss_probability
        self.break_probability = break_probability
        self.broken_flows: set[int] = set()
        self._flow_index: dict[tuple[int, int, int, int], int] = {
            (flow.src.value, flow.dst.value, flow.src_port, flow.dst_port):
                index
            for index, flow in enumerate(self.flows.flows)
        }
        if connection_aware:
            engine.add_drop_listener(self._on_drop)
            engine.add_delivery_listener(self._on_delivery)

        routers = engine.topology.routers
        if ingress_weights is None:
            ingress_weights = {name: 1.0 for name in routers}
        unknown = set(ingress_weights) - set(routers)
        if unknown:
            raise GeneratorError(f"unknown ingress routers: {sorted(unknown)}")
        self._ingress_names = list(ingress_weights)
        self._ingress_weights = [ingress_weights[name]
                                 for name in self._ingress_names]
        self._end_time = 0.0

    # -- scheduling ------------------------------------------------------------

    def run(self, start: float, end: float) -> None:
        """Schedule Poisson arrivals over ``[start, end)``.

        Only one arrival event is pending at a time; each arrival
        schedules the next, so this composes with very long runs.
        """
        if end <= start:
            raise GeneratorError("end must exceed start")
        self._end_time = end
        first = start + self.rng.expovariate(self.rate_pps)
        if first < end:
            self.engine.scheduler.schedule_at(first, self._arrival)

    def _arrival(self) -> None:
        packet, ingress = self.next_packet()
        self.engine.inject(packet, ingress)
        next_time = self.engine.scheduler.now + self.rng.expovariate(self.rate_pps)
        if next_time < self._end_time:
            self.engine.scheduler.schedule_at(next_time, self._arrival)

    # -- connection-state feedback ----------------------------------------------

    def _flow_of(self, packet: Packet) -> int | None:
        l4 = packet.l4
        src_port = getattr(l4, "src_port", None)
        dst_port = getattr(l4, "dst_port", None)
        if src_port is None or dst_port is None:
            return None
        key = (packet.ip.src.value, packet.ip.dst.value, src_port, dst_port)
        return self._flow_index.get(key)

    def _on_drop(self, time: float, packet: Packet, router: str,
                 fate: object) -> None:
        index = self._flow_of(packet)
        if index is None:
            return
        if index not in self.broken_flows:
            # One lost segment rarely kills a TCP connection (it
            # retransmits); only a fraction of losses break the flow.
            if self.rng.random() >= self.break_probability:
                return
        newly_broken = index not in self.broken_flows
        self.broken_flows.add(index)
        if newly_broken and self.rng.random() < self.ping_on_loss_probability:
            # The end host notices the stall and pings the destination —
            # the paper's hypothesis for looped echo-request traffic.
            flow = self.flows.flows[index]
            delay = self.rng.uniform(0.5, 2.0)
            self.engine.scheduler.schedule(
                delay, lambda f=flow: self._send_diagnostic_ping(f)
            )

    def _send_diagnostic_ping(self, flow) -> None:
        self.stats.count(PacketCategory.ICMP_ECHO)
        ip = IPv4Header(src=flow.src, dst=flow.dst,
                        ttl=self.ttl_model.sample(self.rng),
                        identification=self.flows.next_ip_id(flow.src))
        icmp = IcmpHeader(icmp_type=ICMP_ECHO_REQUEST,
                          identifier=self.rng.randrange(0x10000),
                          sequence=self.rng.randrange(0x10000))
        packet = Packet.build(ip, icmp, b"\x00" * 48)
        ingress = self.rng.choices(
            self._ingress_names, weights=self._ingress_weights, k=1
        )[0]
        self.engine.inject(packet, ingress)

    def _on_delivery(self, time: float, packet: Packet, router: str) -> None:
        if not self.broken_flows:
            return
        l4 = packet.l4
        if not isinstance(l4, TcpHeader) or not (l4.flags & 0x02):
            return
        index = self._flow_of(packet)
        if index is not None:
            # A SYN got through: the connection re-establishes.
            self.broken_flows.discard(index)

    # -- packet construction ------------------------------------------------------

    def next_packet(self) -> tuple[Packet, str]:
        """Build one packet and pick its ingress router."""
        category = self._draw_category()
        flow = self.flows.sample_flow()
        if (self.connection_aware
                and category.is_tcp
                and category is not PacketCategory.TCP_SYN
                and self._flow_index.get(
                    (flow.src.value, flow.dst.value, flow.src_port,
                     flow.dst_port)
                ) in self.broken_flows):
            # Broken connection: the host is retrying its handshake.
            category = PacketCategory.TCP_SYN
        self.stats.count(category)
        ingress = self.rng.choices(
            self._ingress_names, weights=self._ingress_weights, k=1
        )[0]
        return self._build(category, flow), ingress

    def _build(self, category: PacketCategory, flow) -> Packet:
        ttl = self.ttl_model.sample(self.rng)
        ip_id = self.flows.next_ip_id(flow.src)
        payload_len = self._sample_payload_len(category)
        payload = self._payload_bytes(payload_len)
        ip = IPv4Header(src=flow.src, dst=flow.dst, ttl=ttl,
                        identification=ip_id)

        if category.is_tcp:
            flags = category.tcp_flags()
            if category is PacketCategory.TCP_DATA and payload:
                # Roughly a third of data segments end an application
                # write and carry PSH, as in real backbone mixes.
                if self.rng.random() < 0.35:
                    from repro.net.packet import TcpFlags

                    flags |= TcpFlags.PSH
            l4 = TcpHeader(
                src_port=flow.src_port,
                dst_port=flow.dst_port,
                seq=self.rng.randrange(1 << 32),
                ack=self.rng.randrange(1 << 32),
                flags=flags,
                window=self.rng.choice((8760, 16384, 32768, 65535)),
            )
            return Packet.build(ip, l4, payload)

        if category is PacketCategory.UDP:
            l4 = UdpHeader(src_port=flow.src_port, dst_port=flow.dst_port)
            return Packet.build(ip, l4, payload)

        if category is PacketCategory.MULTICAST:
            from dataclasses import replace

            group = self.rng.choice(_MCAST_GROUPS)
            mcast_ip = replace(ip, dst=group, ttl=min(ttl, 32))
            l4 = UdpHeader(src_port=flow.src_port, dst_port=9875)
            return Packet.build(mcast_ip, l4, payload)

        if category.is_icmp:
            icmp_type = (ICMP_ECHO_REQUEST
                         if category is PacketCategory.ICMP_ECHO
                         else ICMP_ECHO_REPLY)
            l4 = IcmpHeader(
                icmp_type=icmp_type,
                identifier=self.rng.randrange(0x10000),
                sequence=self.rng.randrange(0x10000),
            )
            return Packet.build(ip, l4, payload[:56])

        # OTHER: a raw-protocol packet (GRE or ESP); no L4 header model.
        from dataclasses import replace

        other_ip = replace(ip, protocol=self.rng.choice((47, 50)))
        return Packet.build(other_ip, None, payload)

    def _sample_payload_len(self, category: PacketCategory) -> int:
        if category in (PacketCategory.TCP_SYN, PacketCategory.TCP_SYNACK,
                        PacketCategory.TCP_FIN, PacketCategory.TCP_RST):
            return 0
        modes = [size for size, _ in _SIZE_MODES]
        weights = [weight for _, weight in _SIZE_MODES]
        size = self.rng.choices(modes, weights=weights, k=1)[0]
        if category is PacketCategory.UDP:
            size = min(size, 512)
        return size

    def _payload_bytes(self, length: int) -> bytes:
        """Pseudo-random payload; only a 16-byte seed is random, the rest
        repeats — payload *content* never matters, only its checksum."""
        if length == 0:
            return b""
        seed = self.rng.getrandbits(128).to_bytes(16, "big")
        repeats = length // 16 + 1
        return (seed * repeats)[:length]
