"""Destination prefix populations and flows.

External destinations are /24 prefixes (the longest prefix tier-1 ISPs
honored, and the granularity at which the detector validates and merges
replica streams).  The population skews toward classful class-C space,
matching Figure 7's observation that looped destinations concentrate
there, with Zipf popularity so a handful of prefixes carry most traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.addr import IPv4Address, IPv4Prefix


class FlowError(ValueError):
    """Raised for invalid flow/population parameters."""


@dataclass(slots=True, frozen=True)
class Flow:
    """A five-tuple flow plus the category-independent identity fields."""

    src: IPv4Address
    dst: IPv4Address
    src_port: int
    dst_port: int

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise FlowError(f"port out of range: {port}")


_WELL_KNOWN_PORTS = (80, 80, 80, 443, 25, 53, 53, 110, 119, 21, 8080, 6667)


class PrefixPopulation:
    """A weighted population of destination /24s assigned to egresses.

    * class mix: 60% class-C, 25% class-B, 15% class-A space by default;
    * Zipf(s) popularity over prefixes;
    * each prefix is reachable via one **primary** egress router and, with
      ``multihomed_fraction`` probability, a backup egress — withdrawal of
      the primary then triggers an AS-wide egress shift, the paper's
      EGP-loop scenario.
    """

    def __init__(
        self,
        egresses: list[str],
        n_prefixes: int = 200,
        rng: random.Random | None = None,
        zipf_s: float = 1.1,
        class_mix: tuple[float, float, float] = (0.15, 0.25, 0.60),
        multihomed_fraction: float = 0.5,
    ) -> None:
        if not egresses:
            raise FlowError("need at least one egress router")
        if n_prefixes <= 0:
            raise FlowError("need a positive number of prefixes")
        if abs(sum(class_mix) - 1.0) > 1e-9:
            raise FlowError(f"class mix must sum to 1: {class_mix}")
        self.rng = rng or random.Random(0)
        self.prefixes: list[IPv4Prefix] = []
        self.primary_egress: dict[IPv4Prefix, str] = {}
        self.backup_egress: dict[IPv4Prefix, str] = {}
        seen: set[IPv4Prefix] = set()
        class_a, class_b, _ = class_mix
        while len(self.prefixes) < n_prefixes:
            prefix = self._random_slash24(class_a, class_b)
            if prefix in seen:
                continue
            seen.add(prefix)
            self.prefixes.append(prefix)
            primary = self.rng.choice(egresses)
            self.primary_egress[prefix] = primary
            if len(egresses) > 1 and self.rng.random() < multihomed_fraction:
                backup = self.rng.choice(
                    [name for name in egresses if name != primary]
                )
                self.backup_egress[prefix] = backup
        weights = [1.0 / (rank + 1) ** zipf_s
                   for rank in range(len(self.prefixes))]
        total = sum(weights)
        self._weights = [weight / total for weight in weights]
        self._cumulative: list[float] = []
        acc = 0.0
        for weight in self._weights:
            acc += weight
            self._cumulative.append(acc)

    def _random_slash24(self, class_a: float, class_b: float) -> IPv4Prefix:
        draw = self.rng.random()
        if draw < class_a:
            first = self.rng.randint(1, 126)
        elif draw < class_a + class_b:
            first = self.rng.randint(128, 191)
        else:
            first = self.rng.randint(192, 223)
        return IPv4Prefix(
            (first << 24) | (self.rng.randint(0, 255) << 16)
            | (self.rng.randint(0, 255) << 8),
            24,
        )

    def sample_prefix(self, rng: random.Random | None = None) -> IPv4Prefix:
        """Draw a destination prefix by Zipf popularity (bisection)."""
        import bisect

        rng = rng or self.rng
        index = bisect.bisect_left(self._cumulative, rng.random())
        return self.prefixes[min(index, len(self.prefixes) - 1)]

    def popularity(self, prefix: IPv4Prefix) -> float:
        """The sampling probability of ``prefix``."""
        try:
            index = self.prefixes.index(prefix)
        except ValueError:
            return 0.0
        return self._weights[index]

    def originations(self) -> list[tuple[IPv4Prefix, str]]:
        """All (prefix, egress) pairs to feed into the BGP layer."""
        pairs = [(prefix, egress)
                 for prefix, egress in self.primary_egress.items()]
        pairs.extend(
            (prefix, egress) for prefix, egress in self.backup_egress.items()
        )
        return pairs

    def multihomed_prefixes(self) -> list[IPv4Prefix]:
        """Prefixes that survive a primary-egress withdrawal."""
        return list(self.backup_egress)


class FlowPool:
    """A fixed pool of flows over a prefix population.

    Arrivals pick a flow from the pool, giving temporal locality (many
    packets per flow) while IP identification counters advance per source
    host — both properties the replica detector's false-positive guards
    depend on (same-flow packets are *not* replicas because their IP ids
    and checksums differ).
    """

    def __init__(
        self,
        population: PrefixPopulation,
        n_flows: int = 2000,
        rng: random.Random | None = None,
        source_pool: IPv4Prefix | None = None,
    ) -> None:
        if n_flows <= 0:
            raise FlowError("need a positive number of flows")
        self.rng = rng or random.Random(0)
        self.population = population
        source_pool = source_pool or IPv4Prefix.parse("24.0.0.0/8")
        self.flows: list[Flow] = []
        for _ in range(n_flows):
            prefix = population.sample_prefix(self.rng)
            self.flows.append(
                Flow(
                    src=source_pool.random_address(self.rng),
                    dst=prefix.random_address(self.rng),
                    src_port=self.rng.randint(1024, 65535),
                    dst_port=self.rng.choice(_WELL_KNOWN_PORTS),
                )
            )
        self._ip_id: dict[int, int] = {}

    def sample_flow(self) -> Flow:
        """Draw a flow; mild popularity skew via two-choice minimum."""
        first = self.rng.randrange(len(self.flows))
        second = self.rng.randrange(len(self.flows))
        return self.flows[min(first, second)]

    def next_ip_id(self, src: IPv4Address) -> int:
        """The next IP identification value for packets from ``src``."""
        key = src.value
        value = self._ip_id.get(key, self.rng.randrange(0x10000))
        self._ip_id[key] = (value + 1) & 0xFFFF
        return value
