"""Synthetic trace construction with *known* replica streams.

The simulator produces loops mechanistically; this module instead writes
traces whose loop content is specified exactly — ground truth by
construction.  It exists for detector unit tests, property-based tests
(hypothesis drives the parameters), and micro-benchmarks of detector
throughput, where the paper's algorithm must recover precisely the streams
that were planted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.packet import IPv4Header, Packet, TcpHeader, TcpFlags, UdpHeader
from repro.net.trace import SNAPLEN_40, Trace, TraceRecord


class SyntheticError(ValueError):
    """Raised for unsatisfiable synthetic-loop parameters."""


@dataclass(slots=True)
class SyntheticLoop:
    """Ground truth for one planted loop event.

    ``streams`` lists, per looped packet, the (timestamp, ttl) pairs of its
    replicas as they were written into the trace.
    """

    prefix: IPv4Prefix
    start: float
    ttl_delta: int
    streams: list[list[tuple[float, int]]] = field(default_factory=list)

    @property
    def end(self) -> float:
        return max((replicas[-1][0] for replicas in self.streams),
                   default=self.start)


class SyntheticTraceBuilder:
    """Builds a trace from background packets plus planted replica streams.

    Records are accumulated unordered and sorted at :meth:`build` time, so
    loops and background can interleave freely.
    """

    def __init__(self, rng: random.Random | None = None,
                 snaplen: int = SNAPLEN_40) -> None:
        self.rng = rng or random.Random(0)
        self.snaplen = snaplen
        self._records: list[TraceRecord] = []
        self.loops: list[SyntheticLoop] = []
        self._ip_id = 0

    # -- background ------------------------------------------------------------

    def add_background(
        self,
        count: int,
        start: float,
        end: float,
        prefixes: list[IPv4Prefix] | None = None,
        ttl_choices: tuple[int, ...] = (55, 58, 60, 118, 120, 124, 244),
    ) -> None:
        """Add ``count`` ordinary (non-looped) packets over ``[start, end)``."""
        if count < 0:
            raise SyntheticError("negative count")
        if count and end <= start:
            raise SyntheticError("end must exceed start")
        prefixes = prefixes or [IPv4Prefix.parse("198.51.100.0/24")]
        for _ in range(count):
            timestamp = self.rng.uniform(start, end)
            packet = self._make_packet(
                dst=self.rng.choice(prefixes).random_address(self.rng),
                ttl=self.rng.choice(ttl_choices),
            )
            self._capture(timestamp, packet)

    def add_duplicate_pair(self, timestamp: float,
                           prefix: IPv4Prefix | None = None,
                           gap: float = 0.0001) -> None:
        """A link-layer duplicate: two byte-identical copies (same TTL).

        The validation step must *reject* these (they are not loops); SONET
        protection-switch duplication is the paper's example.
        """
        prefix = prefix or IPv4Prefix.parse("198.51.100.0/24")
        packet = self._make_packet(dst=prefix.random_address(self.rng), ttl=60)
        self._capture(timestamp, packet)
        self._capture(timestamp + gap, packet)

    # -- planted loops -----------------------------------------------------------

    def add_loop(
        self,
        start: float,
        prefix: IPv4Prefix,
        ttl_delta: int = 2,
        n_packets: int = 4,
        replicas_per_packet: int | None = None,
        spacing: float = 0.004,
        packet_gap: float = 0.050,
        entry_ttl: int = 60,
        jitter: float = 0.0002,
    ) -> SyntheticLoop:
        """Plant one routing loop affecting ``n_packets`` packets to
        ``prefix``.

        Each packet contributes a replica stream: copies every ``spacing``
        seconds (the loop round-trip), TTL decreasing by ``ttl_delta``,
        until the TTL would expire or ``replicas_per_packet`` is reached.
        """
        if ttl_delta < 1:
            raise SyntheticError(f"ttl_delta must be >= 1: {ttl_delta}")
        if n_packets < 1:
            raise SyntheticError("need at least one packet")
        if spacing <= 0:
            raise SyntheticError("spacing must be positive")
        max_replicas = (entry_ttl - 1) // ttl_delta + 1
        if replicas_per_packet is None:
            replicas_per_packet = max_replicas
        if replicas_per_packet > max_replicas:
            raise SyntheticError(
                f"{replicas_per_packet} replicas need TTL > "
                f"{(replicas_per_packet - 1) * ttl_delta}, have {entry_ttl}"
            )
        loop = SyntheticLoop(prefix=prefix, start=start, ttl_delta=ttl_delta)
        for packet_index in range(n_packets):
            base_time = start + packet_index * packet_gap
            packet = self._make_packet(
                dst=prefix.random_address(self.rng), ttl=entry_ttl
            )
            stream: list[tuple[float, int]] = []
            for replica_index in range(replicas_per_packet):
                ttl = entry_ttl - replica_index * ttl_delta
                timestamp = (base_time + replica_index * spacing
                             + self.rng.uniform(0, jitter))
                replica = Packet(
                    ip=self._with_ttl(packet.ip, ttl),
                    l4=packet.l4,
                    payload=packet.payload,
                )
                self._capture(timestamp, replica)
                stream.append((timestamp, ttl))
            loop.streams.append(stream)
        self.loops.append(loop)
        return loop

    # -- output ---------------------------------------------------------------------

    def build(self, link_name: str = "synthetic") -> Trace:
        """The assembled, time-sorted trace."""
        trace = Trace(link_name=link_name, snaplen=self.snaplen)
        for record in sorted(self._records, key=lambda r: r.timestamp):
            trace.append(record)
        return trace

    # -- internals --------------------------------------------------------------------

    def _capture(self, timestamp: float, packet: Packet) -> None:
        self._records.append(
            TraceRecord.capture(timestamp, packet, self.snaplen)
        )

    def _next_ip_id(self) -> int:
        self._ip_id = (self._ip_id + 1) & 0xFFFF
        return self._ip_id

    def _make_packet(self, dst: IPv4Address, ttl: int) -> Packet:
        src = IPv4Address.from_octets(
            24, self.rng.randint(0, 255), self.rng.randint(0, 255),
            self.rng.randint(1, 254),
        )
        ip = IPv4Header(src=src, dst=dst, ttl=ttl,
                        identification=self._next_ip_id())
        use_tcp = self.rng.random() < 0.85
        if use_tcp:
            l4 = TcpHeader(
                src_port=self.rng.randint(1024, 65535),
                dst_port=self.rng.choice((80, 443, 25)),
                seq=self.rng.randrange(1 << 32),
                flags=TcpFlags.ACK,
            )
        else:
            l4 = UdpHeader(
                src_port=self.rng.randint(1024, 65535), dst_port=53
            )
        payload = self.rng.getrandbits(64).to_bytes(8, "big") * 4
        return Packet.build(ip, l4, payload)

    @staticmethod
    def _with_ttl(ip: IPv4Header, ttl: int) -> IPv4Header:
        from dataclasses import replace

        return replace(ip, ttl=ttl, checksum=None)
