"""Initial TTL population.

Packets arrive at a backbone link having already crossed some upstream
hops, so the TTL observed there is an OS default (64 for Linux, 128 for
Windows 2000, 255 for some routers/Solaris, 32 for old Windows) minus the
upstream path length.  This distribution drives two of the paper's
signature shapes: the number of replicas a loop generates (≈ TTL /
ttl-delta, producing Figure 3's jumps at ~31 and ~63) and the step pattern
in stream durations (Figure 8).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


class TtlModelError(ValueError):
    """Raised for invalid TTL model parameters."""


@dataclass(frozen=True)
class InitialTtlModel:
    """OS-default TTL bases minus a random upstream hop count.

    ``bases`` maps TTL base → weight; ``upstream_hops`` is the inclusive
    range of hops already traversed before the packet enters the simulated
    AS.
    """

    bases: dict[int, float] = field(
        default_factory=lambda: {64: 55.0, 128: 35.0, 255: 8.0, 32: 2.0}
    )
    upstream_hops: tuple[int, int] = (3, 18)

    def __post_init__(self) -> None:
        if not self.bases:
            raise TtlModelError("no TTL bases")
        for base, weight in self.bases.items():
            if not 1 <= base <= 255:
                raise TtlModelError(f"TTL base out of range: {base}")
            if weight < 0:
                raise TtlModelError(f"negative weight for base {base}")
        if sum(self.bases.values()) <= 0:
            raise TtlModelError("all-zero base weights")
        lo, hi = self.upstream_hops
        if lo < 0 or hi < lo:
            raise TtlModelError(f"bad upstream hop range: {self.upstream_hops}")
        if hi >= min(self.bases):
            raise TtlModelError(
                "upstream hops may exhaust the smallest TTL base"
            )

    def sample_base(self, rng: random.Random) -> int:
        bases = list(self.bases)
        weights = [self.bases[base] for base in bases]
        return rng.choices(bases, weights=weights, k=1)[0]

    def sample(self, rng: random.Random) -> int:
        """The TTL with which a packet enters the monitored AS."""
        base = self.sample_base(rng)
        lo, hi = self.upstream_hops
        return base - rng.randint(lo, hi)


#: Default model: Linux-dominant with a large Windows share, per the
#: paper's observation that 64 and 128 are the popular initial values.
DEFAULT_TTL_MODEL = InitialTtlModel()
