"""Traffic workload generation.

Synthesizes backbone-like packet populations: the protocol/flag mix of
Figure 5 (>80% TCP, 5–15% UDP, ICMP, multicast, other), the initial-TTL
population behind Figures 3/8 (64 and 128 dominant, minus upstream hops),
trimodal packet sizes, Zipf-popular destination prefixes concentrated in
class-C space (Figure 7), and Poisson packet arrivals fed into the
forwarding engine.
"""

from repro.traffic.mix import DEFAULT_MIX, PacketCategory, TrafficMix
from repro.traffic.ttl import DEFAULT_TTL_MODEL, InitialTtlModel
from repro.traffic.flows import Flow, PrefixPopulation
from repro.traffic.generator import WorkloadGenerator
from repro.traffic.synthetic import SyntheticLoop, SyntheticTraceBuilder

__all__ = [
    "TrafficMix",
    "PacketCategory",
    "DEFAULT_MIX",
    "InitialTtlModel",
    "DEFAULT_TTL_MODEL",
    "PrefixPopulation",
    "Flow",
    "WorkloadGenerator",
    "SyntheticTraceBuilder",
    "SyntheticLoop",
]
