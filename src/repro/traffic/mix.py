"""Traffic type mix: which kinds of packets make up the workload.

The categories follow Figure 5 of the paper (TCP with its flag breakdown,
UDP, multicast, ICMP, other).  A :class:`TrafficMix` is a categorical
distribution over :class:`PacketCategory`; the defaults are set to the
proportions the paper reports for the Sprint links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum

from repro.net.packet import TcpFlags


class PacketCategory(Enum):
    """Workload packet categories, mirroring Figure 5's x-axis."""

    TCP_DATA = "tcp_data"          # plain ACK / ACK+PSH data segments
    TCP_SYN = "tcp_syn"
    TCP_SYNACK = "tcp_synack"
    TCP_FIN = "tcp_fin"
    TCP_RST = "tcp_rst"
    TCP_URG = "tcp_urg"
    UDP = "udp"
    MULTICAST = "multicast"        # UDP to class-D destinations
    ICMP_ECHO = "icmp_echo"
    ICMP_ECHO_REPLY = "icmp_echo_reply"
    OTHER = "other"                # non-TCP/UDP/ICMP protocols (GRE, ESP, ...)

    @property
    def is_tcp(self) -> bool:
        return self.name.startswith("TCP_")

    @property
    def is_icmp(self) -> bool:
        return self.name.startswith("ICMP_")

    def tcp_flags(self) -> TcpFlags:
        """The TCP flags carried by packets of this category."""
        table = {
            PacketCategory.TCP_DATA: TcpFlags.ACK,
            PacketCategory.TCP_SYN: TcpFlags.SYN,
            PacketCategory.TCP_SYNACK: TcpFlags.SYN | TcpFlags.ACK,
            PacketCategory.TCP_FIN: TcpFlags.FIN | TcpFlags.ACK,
            PacketCategory.TCP_RST: TcpFlags.RST,
            PacketCategory.TCP_URG: TcpFlags.URG | TcpFlags.ACK,
        }
        if self not in table:
            raise ValueError(f"{self} is not a TCP category")
        return table[self]


class MixError(ValueError):
    """Raised for invalid mixes (negative or all-zero weights)."""


@dataclass(frozen=True)
class TrafficMix:
    """A categorical distribution over packet categories."""

    weights: dict[PacketCategory, float]

    def __post_init__(self) -> None:
        if not self.weights:
            raise MixError("empty mix")
        if any(weight < 0 for weight in self.weights.values()):
            raise MixError("negative weight")
        if sum(self.weights.values()) <= 0:
            raise MixError("all-zero mix")

    @property
    def normalized(self) -> dict[PacketCategory, float]:
        total = sum(self.weights.values())
        return {category: weight / total
                for category, weight in self.weights.items()}

    def sample(self, rng: random.Random) -> PacketCategory:
        """Draw one category."""
        categories = list(self.weights)
        weights = [self.weights[category] for category in categories]
        return rng.choices(categories, weights=weights, k=1)[0]

    def sampler(self, rng: random.Random):
        """A bound fast sampler (precomputes cumulative weights)."""
        import itertools

        categories = list(self.weights)
        cumulative = list(itertools.accumulate(
            self.weights[category] for category in categories
        ))
        total = cumulative[-1]

        def draw() -> PacketCategory:
            x = rng.random() * total
            # Linear scan: the category list is tiny (≤ 12 entries).
            for category, bound in zip(categories, cumulative):
                if x < bound:
                    return category
            return categories[-1]

        return draw

    def fraction(self, category: PacketCategory) -> float:
        return self.normalized.get(category, 0.0)


#: Default backbone mix, set to the proportions of Figure 5: TCP > 80%
#: (almost all plain data/ACK; SYN and FIN well under 1% each), UDP ~ 10%,
#: small ICMP / multicast / other shares.
DEFAULT_MIX = TrafficMix(
    weights={
        PacketCategory.TCP_DATA: 80.0,
        PacketCategory.TCP_SYN: 0.7,
        PacketCategory.TCP_SYNACK: 0.5,
        PacketCategory.TCP_FIN: 0.6,
        PacketCategory.TCP_RST: 0.3,
        PacketCategory.TCP_URG: 0.05,
        PacketCategory.UDP: 12.0,
        PacketCategory.MULTICAST: 0.8,
        PacketCategory.ICMP_ECHO: 1.2,
        PacketCategory.ICMP_ECHO_REPLY: 0.8,
        PacketCategory.OTHER: 1.0,
    }
)
