"""repro — detection and analysis of routing loops in packet traces.

A full reproduction of Hengartner, Moon, Mortier & Diot, *Detection and
Analysis of Routing Loops in Packet Traces* (IMC 2002): the replica-stream
loop detector, the analysis and impact metrics, and a discrete-event
backbone simulator (link-state IGP + simplified BGP + packet forwarding)
that stands in for the Sprint traces the paper used.

Quick start::

    from repro import LoopDetector, read_pcap

    trace = read_pcap("link.pcap")
    result = LoopDetector().detect(trace)
    for loop in result.loops:
        print(loop.prefix, loop.duration, loop.replica_count)

or simulate a backbone and detect loops in its monitor trace::

    from repro.sim import BackboneScenario

    scenario = BackboneScenario.table1_row("backbone1")
    run = scenario.run()
    result = LoopDetector().detect(run.trace)
"""

from repro.core.detector import DetectionResult, DetectorConfig, LoopDetector
from repro.core.merge import RoutingLoop
from repro.core.replica import Replica, ReplicaStream, detect_replicas_columnar
from repro.core.streaming import StreamingLoopDetector
from repro.net.columnar import ColumnarChunk, ColumnarTrace
from repro.net.pcap import (
    iter_pcap,
    iter_pcap_chunks,
    iter_pcap_columnar,
    read_pcap,
    read_pcap_columnar,
    write_pcap,
)
from repro.net.trace import Trace, TraceRecord
from repro.parallel import ParallelLoopDetector, run_batch

__version__ = "1.0.0"

__all__ = [
    "LoopDetector",
    "StreamingLoopDetector",
    "ParallelLoopDetector",
    "run_batch",
    "DetectorConfig",
    "DetectionResult",
    "RoutingLoop",
    "ReplicaStream",
    "Replica",
    "Trace",
    "TraceRecord",
    "ColumnarChunk",
    "ColumnarTrace",
    "read_pcap",
    "read_pcap_columnar",
    "write_pcap",
    "iter_pcap",
    "iter_pcap_chunks",
    "iter_pcap_columnar",
    "detect_replicas_columnar",
    "__version__",
]
