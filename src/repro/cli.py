"""Command-line interface.

Subcommands::

    repro-loops detect <trace.pcap>        # run the detector on a pcap
    repro-loops detect --jobs 4 <trace>    # sharded multi-process detection
    repro-loops batch [targets...]         # several traces concurrently
    repro-loops simulate <scenario>        # run a Table I scenario
    repro-loops report <scenario>          # scenario + full figure report

``python -m repro`` is equivalent.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.analysis import (
    loop_duration_cdf,
    looped_traffic_type_distribution,
    spacing_cdf,
    stream_duration_cdf,
    stream_size_cdf,
    traffic_type_distribution,
    ttl_delta_distribution,
)
from repro.core.detector import DetectorConfig, LoopDetector
from repro.core.impact import escape_analysis
from repro.core.report import (
    render_cdf,
    render_destination_classes,
    render_distribution,
    render_summary,
    render_traffic_types,
)
from repro.net.pcap import read_pcap, write_pcap


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-loops",
        description="Routing-loop detection in packet traces (IMC 2002 "
                    "reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    detect = sub.add_parser("detect", help="detect loops in a pcap trace")
    detect.add_argument("trace", help="pcap file to analyze")
    detect.add_argument("--merge-gap", type=float, default=60.0,
                        help="stream merge gap in seconds (default 60)")
    detect.add_argument("--min-stream-size", type=int, default=3,
                        help="minimum replicas per stream (default 3)")
    detect.add_argument("--prefix-length", type=int, default=24,
                        help="validation prefix length (default 24)")
    detect.add_argument("--no-validate", action="store_true",
                        help="skip the prefix-consistency validation")
    detect.add_argument("--figures", action="store_true",
                        help="also print the per-figure statistics")
    detect.add_argument("--json", action="store_true",
                        help="emit the detection result as JSON")
    detect.add_argument("--streaming", action="store_true",
                        help="use the online (streaming) detector")
    detect.add_argument("--jobs", type=int, default=1,
                        help="worker processes for sharded detection "
                             "(default 1 = offline single-process)")
    detect.add_argument("--shards", type=int, default=None,
                        help="shard count for --jobs (default: same as "
                             "--jobs)")

    batch = sub.add_parser(
        "batch",
        help="run detection over several traces concurrently",
    )
    batch.add_argument("targets", nargs="*",
                       help="pcap files and/or Table I scenario names "
                            "(default: all four scenarios)")
    batch.add_argument("--jobs", type=int, default=1,
                       help="concurrent trace workers (default 1)")
    batch.add_argument("--duration", type=float, default=None,
                       help="override scenario duration in seconds")
    batch.add_argument("--merge-gap", type=float, default=60.0,
                       help="stream merge gap in seconds (default 60)")
    batch.add_argument("--min-stream-size", type=int, default=3,
                       help="minimum replicas per stream (default 3)")

    simulate = sub.add_parser(
        "simulate", help="run a Table I backbone scenario"
    )
    simulate.add_argument("scenario", help="scenario name (backbone1..4)")
    simulate.add_argument("--duration", type=float, default=None,
                          help="override scenario duration in seconds")
    simulate.add_argument("--pcap", default=None,
                          help="write the monitor trace to this pcap file")
    simulate.add_argument("--no-route-cache", action="store_true",
                          help="disable the forwarding engine's "
                               "resolved-route cache (slow reference "
                               "path; identical output)")

    report = sub.add_parser(
        "report", help="scenario run + full per-figure report"
    )
    report.add_argument("scenario", help="scenario name (backbone1..4)")
    report.add_argument("--duration", type=float, default=None,
                        help="override scenario duration in seconds")
    report.add_argument("--no-route-cache", action="store_true",
                        help="disable the forwarding engine's "
                             "resolved-route cache")

    anonymize = sub.add_parser(
        "anonymize",
        help="prefix-preserving anonymization of a pcap trace",
    )
    anonymize.add_argument("trace", help="input pcap")
    anonymize.add_argument("output", help="output pcap")
    anonymize.add_argument("--key", required=True,
                           help="secret key (>= 16 characters)")
    return parser


def _detector_from_args(args: argparse.Namespace) -> LoopDetector:
    config = DetectorConfig(
        merge_gap=args.merge_gap,
        min_stream_size=args.min_stream_size,
        prefix_length=args.prefix_length,
        check_prefix_consistency=not args.no_validate,
        check_gap_consistency=not args.no_validate,
    )
    return LoopDetector(config)


def _print_figures(result) -> None:
    streams = result.streams
    print()
    print(render_distribution(
        ttl_delta_distribution(streams), "Figure 2 — TTL delta distribution"
    ))
    print()
    print(render_cdf(stream_size_cdf(streams),
                     "Figure 3 — replicas per stream", unit="",
                     plot=True))
    print()
    print(render_cdf(spacing_cdf(streams),
                     "Figure 4 — inter-replica spacing", unit=" s",
                     plot=True, log_x=True))
    print()
    print(render_traffic_types(
        traffic_type_distribution(result.trace),
        "Figure 5 — traffic types, all traffic",
    ))
    print()
    print(render_traffic_types(
        looped_traffic_type_distribution(streams),
        "Figure 6 — traffic types, looped traffic",
    ))
    print()
    print(render_destination_classes(result))
    from repro.core.report import render_figure7_scatter

    print()
    print(render_figure7_scatter(result))
    print()
    print(render_cdf(stream_duration_cdf(streams),
                     "Figure 8 — replica stream duration", unit=" s",
                     plot=True, log_x=True))
    print()
    print(render_cdf(loop_duration_cdf(result.loops),
                     "Figure 9 — routing loop duration", unit=" s",
                     plot=True))
    escapes = escape_analysis(streams)
    print()
    print(f"escape analysis: {escapes.escaped}/{escapes.total_streams} "
          f"streams escaped ({escapes.escape_fraction:.1%})")


def _cmd_detect(args: argparse.Namespace) -> int:
    if args.streaming and args.jobs > 1:
        print("error: --streaming and --jobs are mutually exclusive",
              file=sys.stderr)
        return 1
    detector = _detector_from_args(args)
    if args.streaming:
        trace = read_pcap(args.trace)
        from repro.core.streaming import StreamingLoopDetector

        streaming = StreamingLoopDetector(detector.config)
        loops = streaming.process_trace(trace)
        print(f"records: {streaming.stats.records}")
        print(f"streams completed: {streaming.stats.streams_completed}")
        print(f"routing loops: {len(loops)}")
        for loop in loops:
            print(f"  {loop.prefix}  {loop.start:.3f}..{loop.end:.3f}s  "
                  f"delta={loop.ttl_delta} replicas={loop.replica_count}")
        return 0
    if args.jobs > 1:
        from repro.parallel import ParallelLoopDetector

        engine = ParallelLoopDetector(
            detector.config, jobs=args.jobs, shards=args.shards
        )
        if args.figures or args.json:
            # Figure statistics and JSON need the full trace in memory.
            result = engine.detect(read_pcap(args.trace,
                                             link_name=args.trace))
        else:
            result = engine.detect_file(args.trace, link_name=args.trace)
        if args.json:
            from repro.core.serialize import result_to_json

            print(result_to_json(result))
            return 0
        print(render_summary(result))
        print()
        print(result.parallel.render())
        if args.figures:
            _print_figures(result)
        return 0
    trace = read_pcap(args.trace)
    result = detector.detect(trace)
    if args.json:
        from repro.core.serialize import result_to_json

        print(result_to_json(result))
        return 0
    print(render_summary(result))
    if args.figures:
        _print_figures(result)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.parallel import run_batch

    config = DetectorConfig(
        merge_gap=args.merge_gap,
        min_stream_size=args.min_stream_size,
    )
    result = run_batch(
        targets=args.targets or None,
        jobs=args.jobs,
        config=config,
        duration=args.duration,
    )
    print(result.render())
    return 1 if result.failed else 0


def _run_scenario(name: str, duration: float | None,
                  route_cache: bool = True):
    from repro.sim import table1_scenario

    overrides = {}
    if duration is not None:
        overrides["duration"] = duration
    if not route_cache:
        overrides["route_cache"] = False
    scenario = table1_scenario(name, **overrides)
    return scenario.run()


def _render_cache_stats(engine) -> str:
    stats = engine.route_cache_stats()
    if not stats["enabled"]:
        return "route cache: disabled (reference path)"
    return (f"route cache: {stats['hits']} hits / {stats['misses']} misses "
            f"/ {stats['invalidations']} invalidations "
            f"(hit rate {stats['hit_rate']:.1%})")


def _cmd_simulate(args: argparse.Namespace) -> int:
    run = _run_scenario(args.scenario, args.duration,
                        route_cache=not args.no_route_cache)
    detector = LoopDetector()
    result = detector.detect(run.trace)
    print(render_summary(result))
    print(f"ground-truth looped packets (AS-wide): "
          f"{run.ground_truth_looped}")
    print(f"ground-truth TTL expiries: {run.ground_truth_expired}")
    print(_render_cache_stats(run.engine))
    if args.pcap:
        write_pcap(run.trace, args.pcap)
        print(f"trace written to {args.pcap}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    run = _run_scenario(args.scenario, args.duration,
                        route_cache=not args.no_route_cache)
    result = LoopDetector().detect(run.trace)
    print(render_summary(result))
    print(_render_cache_stats(run.engine))
    _print_figures(result)
    return 0


def _cmd_anonymize(args: argparse.Namespace) -> int:
    from repro.net.anonymize import PrefixPreservingAnonymizer

    trace = read_pcap(args.trace)
    anonymizer = PrefixPreservingAnonymizer(args.key.encode())
    write_pcap(anonymizer.anonymize_trace(trace), args.output)
    print(f"{len(trace)} records anonymized -> {args.output}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "detect": _cmd_detect,
        "batch": _cmd_batch,
        "simulate": _cmd_simulate,
        "report": _cmd_report,
        "anonymize": _cmd_anonymize,
    }
    try:
        return handlers[args.command](args)
    except (FileNotFoundError, KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
