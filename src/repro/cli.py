"""Command-line interface.

Subcommands::

    repro-loops detect <trace.pcap>        # run the detector on a pcap
    repro-loops detect --jobs 4 <trace>    # sharded multi-process detection
    repro-loops batch [targets...]         # several traces concurrently
    repro-loops simulate <scenario>        # run a Table I scenario
    repro-loops report <scenario>          # scenario + full figure report
    repro-loops monitor <trace.pcap>       # stream + live scrape endpoint
    repro-loops fleet <fleet.toml>         # multi-link monitoring daemon
    repro-loops perf compare A.json B.json # diff two benchmark runs

``python -m repro`` is equivalent.

Observability flags shared by ``detect``, ``batch``, ``simulate``,
``report``, and ``monitor``: ``--metrics-out`` (Prometheus text, or
JSON for ``.json`` paths), ``--trace-out`` (JSONL span/event trace),
``--progress`` (heartbeat logging for long runs), ``--sample-profile``
(collapsed-stack sampling profiler output), ``--log-level``, and
the live-monitoring trio — ``--serve PORT`` (background ``/metrics``,
``/healthz``, ``/state`` and dashboard endpoint), ``--alerts``
(paper-grounded alert rules on window boundaries), and
``--dashboard-out FILE`` (self-contained HTML dashboard written on
exit).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.core.analysis import (
    loop_duration_cdf,
    looped_traffic_type_distribution,
    spacing_cdf,
    stream_duration_cdf,
    stream_size_cdf,
    traffic_type_distribution,
    ttl_delta_distribution,
)
from repro.core.detector import DetectorConfig, LoopDetector
from repro.core.impact import escape_analysis
from repro.core.replica import KERNEL_TIERS
from repro.core.report import (
    render_cdf,
    render_destination_classes,
    render_distribution,
    render_summary,
    render_traffic_types,
)
from repro.net.pcap import read_pcap, read_pcap_columnar, write_pcap
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.progress import Heartbeat, enable_progress_logging
from repro.obs.tracing import NULL_TRACER, Tracer

_logger = get_logger("cli")


def _obs_parent() -> argparse.ArgumentParser:
    """Shared observability flags, attached via ``parents=``."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write final metrics to FILE on exit "
                            "(.json suffix: JSON snapshot, otherwise "
                            "Prometheus text format)")
    group.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write a JSONL span/event trace to FILE")
    group.add_argument("--sample-profile", default=None, metavar="FILE",
                       help="run a ~100 Hz sampling stack profiler for "
                            "the whole command and write collapsed "
                            "stacks (flamegraph.pl / speedscope input) "
                            "to FILE on exit")
    group.add_argument("--progress", action="store_true",
                       help="log heartbeat progress during long stages")
    group.add_argument("--log-level", default="warning",
                       choices=("debug", "info", "warning", "error"),
                       help="logging verbosity (default: warning)")
    live = parent.add_argument_group("live monitoring")
    live.add_argument("--serve", type=int, default=None, metavar="PORT",
                      help="serve /metrics, /healthz, /state and the "
                           "dashboard on 127.0.0.1:PORT while running "
                           "(0 = ephemeral port)")
    live.add_argument("--alerts", action="store_true",
                      help="evaluate the paper-grounded alert rules on "
                           "window boundaries and log fired alerts")
    live.add_argument("--dashboard-out", default=None, metavar="FILE",
                      help="write the self-contained HTML dashboard to "
                           "FILE on exit")
    return parent


class _Obs:
    """Per-invocation observability wiring from the shared CLI flags.

    Installs an enabled :class:`MetricsRegistry` as the process registry
    when metrics will be exported (``--metrics-out``, ``--json``, or any
    live-monitoring flag), opens the ``--trace-out`` sink, and undoes
    both in :meth:`finish` — so unit tests that call :func:`main`
    repeatedly never leak registry state.

    The live-monitoring flags (``--serve``, ``--alerts``,
    ``--dashboard-out``) additionally create a
    :class:`~repro.obs.live.LiveMonitor` (``self.monitor``) for the
    command to feed, and — under ``--serve`` — start the background
    scrape server before any work begins.
    """

    def __init__(self, args: argparse.Namespace) -> None:
        self.metrics_out = getattr(args, "metrics_out", None)
        self.trace_out = getattr(args, "trace_out", None)
        self.progress = bool(getattr(args, "progress", False))
        self.serve = getattr(args, "serve", None)
        self.dashboard_out = getattr(args, "dashboard_out", None)
        monitoring = (self.serve is not None
                      or bool(getattr(args, "alerts", False))
                      or bool(self.dashboard_out)
                      or bool(getattr(args, "force_monitor", False)))
        self._previous_registry = None
        self.registry = MetricsRegistry(enabled=False)
        if self.metrics_out or getattr(args, "json", False) or monitoring:
            self.registry = MetricsRegistry(enabled=True)
            self._previous_registry = set_registry(self.registry)
        self._sink = None
        self.tracer = NULL_TRACER
        if self.trace_out:
            self._sink = open(self.trace_out, "w", encoding="utf-8")
            self.tracer = Tracer(sink=self._sink)
        self.sample_profile = getattr(args, "sample_profile", None)
        self._profiler = None
        if self.sample_profile:
            from repro.obs.perf import SamplingProfiler

            self._profiler = SamplingProfiler()
            self._profiler.start()
        if self.progress:
            enable_progress_logging()
        self.monitor = None
        self.server = None
        if monitoring:
            from repro.obs.dashboard import render_html
            from repro.obs.live import LiveMonitor

            self.monitor = LiveMonitor(registry=self.registry,
                                       tracer=self.tracer)
            if self.serve is not None:
                from repro.obs.server import MonitorServer

                monitor = self.monitor
                self.server = MonitorServer(
                    monitor, port=self.serve,
                    dashboard_renderer=lambda: render_html(monitor),
                ).start()

    def heartbeat(self, label: str) -> Heartbeat | None:
        """A rate-limited progress callable, or None without --progress."""
        if not self.progress:
            return None
        return Heartbeat(label)

    def metrics_snapshot(self) -> dict:
        self.registry.collect()
        return self.registry.snapshot()

    def feed_monitor(self, trace=None, loops=()) -> None:
        """Post-hoc monitor feed for commands whose detection path is
        not incremental (offline / parallel / simulate): replay record
        timestamps and emitted loops into the live monitor, then close
        its final window."""
        if self.monitor is None:
            return
        if trace is not None:
            if hasattr(trace, "iter_timestamps"):
                # Columnar traces expose timestamps straight off the
                # columns — no record objects needed.
                for timestamp in trace.iter_timestamps():
                    self.monitor.observe_record(timestamp)
            else:
                for record in trace:
                    self.monitor.observe_record(record.timestamp)
        for loop in loops:
            self.monitor.observe_loop(loop)
        self.monitor.finish()

    def write_dashboard(self) -> None:
        """Write --dashboard-out now.  Called as soon as the monitored
        stream finishes (so a killed --linger run still leaves the file
        behind) and again from :meth:`finish` as a safety net — the
        second write renders the same finished monitor."""
        if self.monitor is None or not self.dashboard_out:
            return
        from repro.obs.dashboard import render_html

        with open(self.dashboard_out, "w", encoding="utf-8") as stream:
            stream.write(render_html(self.monitor))
        _logger.info("dashboard written to %s", self.dashboard_out)

    def finish(self) -> None:
        if self._profiler is not None:
            self._profiler.stop()
            self._profiler.write(self.sample_profile)
            _logger.info("sampling profile (%d samples) written to %s",
                         self._profiler.sample_count, self.sample_profile)
            self._profiler = None
        if self.monitor is not None:
            self.monitor.finish()
            self.write_dashboard()
        if self.server is not None:
            self.server.stop()
            self.server = None
        self.registry.collect()
        if self.metrics_out:
            if str(self.metrics_out).endswith(".json"):
                text = self.registry.to_json()
            else:
                text = self.registry.render_prometheus()
            with open(self.metrics_out, "w", encoding="utf-8") as stream:
                stream.write(text)
            _logger.info("metrics written to %s", self.metrics_out)
        if self.tracer is not NULL_TRACER:
            self.tracer.close()
        if self._sink is not None:
            self._sink.close()
            _logger.info("trace written to %s", self.trace_out)
        if self._previous_registry is not None:
            set_registry(self._previous_registry)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-loops",
        description="Routing-loop detection in packet traces (IMC 2002 "
                    "reproduction)",
    )
    obs = _obs_parent()
    sub = parser.add_subparsers(dest="command", required=True)

    detect = sub.add_parser("detect", parents=[obs],
                            help="detect loops in a pcap trace")
    detect.add_argument("trace", help="pcap file to analyze")
    detect.add_argument("--columnar", default=True,
                        action=argparse.BooleanOptionalAction,
                        help="read via the zero-copy mmap columnar "
                             "pipeline (default; --no-columnar selects "
                             "the per-record reference path, identical "
                             "output)")
    detect.add_argument("--kernel", default=None, choices=KERNEL_TIERS,
                        help="step-1 kernel tier (default: auto — "
                             "vectorized when numpy is available — "
                             "under columnar ingest, reference under "
                             "--no-columnar); an explicit tier also "
                             "picks the matching ingest path")
    detect.add_argument("--profile", default=None, metavar="OUT",
                        help="profile the run with cProfile and write "
                             "pstats data to OUT")
    detect.add_argument("--merge-gap", type=float, default=60.0,
                        help="stream merge gap in seconds (default 60)")
    detect.add_argument("--min-stream-size", type=int, default=3,
                        help="minimum replicas per stream (default 3)")
    detect.add_argument("--prefix-length", type=int, default=24,
                        help="validation prefix length (default 24)")
    detect.add_argument("--no-validate", action="store_true",
                        help="skip the prefix-consistency validation")
    detect.add_argument("--figures", action="store_true",
                        help="also print the per-figure statistics")
    detect.add_argument("--json", action="store_true",
                        help="emit the detection result as JSON")
    detect.add_argument("--streaming", action="store_true",
                        help="use the online (streaming) detector")
    detect.add_argument("--jobs", type=int, default=1,
                        help="worker processes for sharded detection "
                             "(default 1 = offline single-process)")
    detect.add_argument("--shards", type=int, default=None,
                        help="shard count for --jobs (default: same as "
                             "--jobs)")

    batch = sub.add_parser(
        "batch", parents=[obs],
        help="run detection over several traces concurrently",
    )
    batch.add_argument("targets", nargs="*",
                       help="pcap files and/or Table I scenario names "
                            "(default: all four scenarios)")
    batch.add_argument("--jobs", type=int, default=1,
                       help="concurrent trace workers (default 1)")
    batch.add_argument("--duration", type=float, default=None,
                       help="override scenario duration in seconds")
    batch.add_argument("--merge-gap", type=float, default=60.0,
                       help="stream merge gap in seconds (default 60)")
    batch.add_argument("--min-stream-size", type=int, default=3,
                       help="minimum replicas per stream (default 3)")
    batch.add_argument("--columnar", default=True,
                       action=argparse.BooleanOptionalAction,
                       help="analyze pcap targets via the zero-copy "
                            "columnar pipeline (default; scenario "
                            "targets are unaffected)")
    batch.add_argument("--kernel", default=None, choices=KERNEL_TIERS,
                       help="step-1 kernel tier for pcap targets "
                            "(default: auto under columnar ingest)")
    batch.add_argument("--profile", default=None, metavar="OUT",
                       help="profile the run with cProfile and write "
                            "pstats data to OUT")

    simulate = sub.add_parser(
        "simulate", parents=[obs],
        help="run a Table I backbone scenario",
    )
    simulate.add_argument("scenario", help="scenario name (backbone1..4)")
    simulate.add_argument("--duration", type=float, default=None,
                          help="override scenario duration in seconds")
    simulate.add_argument("--pcap", default=None,
                          help="write the monitor trace to this pcap file")
    simulate.add_argument("--json", action="store_true",
                          help="emit the detection result (plus ground "
                               "truth, route-cache and metrics sections) "
                               "as JSON")
    simulate.add_argument("--no-route-cache", action="store_true",
                          help="disable the forwarding engine's "
                               "resolved-route cache (slow reference "
                               "path; identical output)")

    report = sub.add_parser(
        "report", parents=[obs],
        help="scenario run + full per-figure report",
    )
    report.add_argument("scenario", help="scenario name (backbone1..4)")
    report.add_argument("--duration", type=float, default=None,
                        help="override scenario duration in seconds")
    report.add_argument("--no-route-cache", action="store_true",
                        help="disable the forwarding engine's "
                             "resolved-route cache")

    monitor = sub.add_parser(
        "monitor", parents=[obs],
        help="stream a pcap through the online detector with live "
             "monitoring (alerts, windows, scrape endpoint)",
    )
    monitor.add_argument("trace", help="pcap file to stream")
    monitor.add_argument("--merge-gap", type=float, default=60.0,
                         help="stream merge gap in seconds (default 60)")
    monitor.add_argument("--min-stream-size", type=int, default=3,
                         help="minimum replicas per stream (default 3)")
    monitor.add_argument("--prefix-length", type=int, default=24,
                         help="validation prefix length (default 24)")
    monitor.add_argument("--no-validate", action="store_true",
                         help="skip the prefix-consistency validation")
    monitor.add_argument("--linger", type=float, default=0.0,
                         metavar="SECONDS",
                         help="keep serving for SECONDS after the trace "
                              "ends (with --serve; default 0)")
    monitor.add_argument("--no-dashboard", action="store_true",
                         help="skip the ASCII dashboard on stdout")
    monitor.add_argument("--kernel", default=None, choices=KERNEL_TIERS,
                         help="step-1 kernel tier recorded in the "
                             "detector config (streaming chains per "
                             "record, so this only switches the ingest "
                             "path: reference reads a materialized "
                             "trace)")
    monitor.add_argument("--columnar", default=True,
                         action=argparse.BooleanOptionalAction,
                         help="stream from the zero-copy mmap columnar "
                              "reader (default; identical output)")
    monitor.set_defaults(force_monitor=True)

    fleet = sub.add_parser(
        "fleet",
        help="run the fleet monitoring daemon: N supervised link "
             "pipelines plus the fleet-wide HTTP API",
    )
    fleet.add_argument("config",
                       help="fleet config file (.toml on Python >= "
                            "3.11, or the same structure as JSON)")
    fleet.add_argument("--serve", type=int, default=None, metavar="PORT",
                       help="override the configured API port "
                            "(0 = ephemeral)")
    fleet.add_argument("--run-for", type=float, default=None,
                       metavar="SECONDS",
                       help="stop the fleet after SECONDS (default: "
                            "run until every source finishes, or "
                            "forever for watch sources)")
    fleet.add_argument("--summary-json", default=None, metavar="FILE",
                       help="write the final /links document to FILE "
                            "on exit")
    fleet.add_argument("--backend", default=None,
                       choices=("thread", "process"),
                       help="override the configured pipeline backend: "
                            "thread (one event loop) or process (link "
                            "pipelines in supervised worker processes)")
    fleet.add_argument("--workers", type=int, default=None, metavar="N",
                       help="process backend: worker-process count "
                            "(0 = one per link, capped at CPU count)")
    fleet.add_argument("--log-level", default="warning",
                       choices=("debug", "info", "warning", "error"),
                       help="logging verbosity (default: warning)")

    perf = sub.add_parser(
        "perf",
        help="benchmark-provenance utilities (compare BENCH_*.json runs)",
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)
    compare = perf_sub.add_parser(
        "compare",
        help="diff two benchmark documents; exit 1 on regression "
             "beyond --threshold, 2 on schema mismatch",
    )
    compare.add_argument("baseline", help="baseline BENCH_*.json")
    compare.add_argument("current", help="current BENCH_*.json")
    compare.add_argument("--threshold", type=float, default=0.1,
                         help="fractional regression threshold "
                              "(default 0.1 = 10%%)")

    anonymize = sub.add_parser(
        "anonymize",
        help="prefix-preserving anonymization of a pcap trace",
    )
    anonymize.add_argument("trace", help="input pcap")
    anonymize.add_argument("output", help="output pcap")
    anonymize.add_argument("--key", required=True,
                           help="secret key (>= 16 characters)")
    return parser


def _kernel_from_args(args: argparse.Namespace) -> str:
    """Resolve the step-1 kernel tier from ``--kernel``/``--columnar``.

    An explicit ``--kernel`` wins and implies its ingest path
    (``reference`` reads a materialized trace, every other tier reads
    columnar); without it, the ingest flag picks the matching default —
    ``auto`` under columnar ingest, ``reference`` under
    ``--no-columnar``.  The caller applies the implied ingest by
    re-deriving ``args.columnar`` from the returned tier."""
    kernel = getattr(args, "kernel", None)
    if kernel is None:
        return "auto" if args.columnar else "reference"
    return kernel


def _detector_from_args(args: argparse.Namespace,
                        tracer=NULL_TRACER) -> LoopDetector:
    config = DetectorConfig(
        merge_gap=args.merge_gap,
        min_stream_size=args.min_stream_size,
        prefix_length=args.prefix_length,
        check_prefix_consistency=not args.no_validate,
        check_gap_consistency=not args.no_validate,
        kernel=_kernel_from_args(args),
    )
    return LoopDetector(config, tracer=tracer)


def _read_trace_file(path: str, obs: _Obs, link_name: str = ""):
    heartbeat = obs.heartbeat(f"read {path}")
    trace = read_pcap(path, link_name=link_name, progress=heartbeat)
    if heartbeat is not None:
        heartbeat.done()
    return trace


def _read_trace_file_columnar(path: str, obs: _Obs, link_name: str = ""):
    heartbeat = obs.heartbeat(f"read {path}")
    trace = read_pcap_columnar(path, link_name=link_name,
                               progress=heartbeat)
    if heartbeat is not None:
        heartbeat.done()
    return trace


def _print_figures(result) -> None:
    streams = result.streams
    print()
    print(render_distribution(
        ttl_delta_distribution(streams), "Figure 2 — TTL delta distribution"
    ))
    print()
    print(render_cdf(stream_size_cdf(streams),
                     "Figure 3 — replicas per stream", unit="",
                     plot=True))
    print()
    print(render_cdf(spacing_cdf(streams),
                     "Figure 4 — inter-replica spacing", unit=" s",
                     plot=True, log_x=True))
    print()
    print(render_traffic_types(
        traffic_type_distribution(result.trace),
        "Figure 5 — traffic types, all traffic",
    ))
    print()
    print(render_traffic_types(
        looped_traffic_type_distribution(streams),
        "Figure 6 — traffic types, looped traffic",
    ))
    print()
    print(render_destination_classes(result))
    from repro.core.report import render_figure7_scatter

    print()
    print(render_figure7_scatter(result))
    print()
    print(render_cdf(stream_duration_cdf(streams),
                     "Figure 8 — replica stream duration", unit=" s",
                     plot=True, log_x=True))
    print()
    print(render_cdf(loop_duration_cdf(result.loops),
                     "Figure 9 — routing loop duration", unit=" s",
                     plot=True))
    escapes = escape_analysis(streams)
    print()
    print(f"escape analysis: {escapes.escaped}/{escapes.total_streams} "
          f"streams escaped ({escapes.escape_fraction:.1%})")


def _json_extras(obs: _Obs) -> dict:
    return {"metrics": obs.metrics_snapshot()}


def _publish_result_metrics(obs: _Obs, result) -> None:
    """Offline detection results have no live object to pull from, so
    the CLI publishes the summary counters directly."""
    registry = obs.registry
    registry.counter("detect_records_total",
                     "Trace records analyzed").set(len(result.trace))
    registry.counter("detect_candidate_streams_total",
                     "Candidate replica streams before validation"
                     ).set(len(result.candidate_streams))
    registry.counter("detect_validated_streams_total",
                     "Replica streams surviving validation"
                     ).set(result.stream_count)
    registry.counter("detect_loops_total",
                     "Routing loops detected").set(result.loop_count)
    registry.counter("detect_looped_packets_total",
                     "Distinct packets caught in loops"
                     ).set(result.looped_packet_count)


def _trace_pairs(trace):
    """``(timestamp, data)`` pairs from either trace representation.

    Columnar traces yield zero-copy memoryviews (the streaming detector
    materializes bytes only when a stream forms); materialized traces
    yield their record bytes."""
    if hasattr(trace, "iter_views"):
        return trace.iter_views()
    return ((record.timestamp, record.data) for record in trace)


def _stream_with_monitor(streaming, trace, monitor):
    """Drive the streaming detector with the live monitor attached,
    feeding it as loops close and sampling its windows on second
    boundaries — identical output to :meth:`process_trace`, observable
    while it runs (the fleet daemon's per-link pipelines run the same
    helpers batch by batch).  Columnar traces go chunk by chunk so the
    detector's batched tier stays engaged under monitoring; anything
    else falls back to the per-record feed."""
    from repro.obs.live import attach_detector, feed_chunk, feed_pairs

    attach_detector(monitor, streaming)
    if hasattr(trace, "chunks"):
        loops = []
        for chunk in trace.chunks:
            loops.extend(feed_chunk(streaming, monitor, chunk))
    else:
        loops = feed_pairs(streaming, monitor, _trace_pairs(trace))
    loops.extend(streaming.flush())
    monitor.finish()
    return loops


def _cmd_detect(args: argparse.Namespace) -> int:
    if args.streaming and args.jobs > 1:
        _logger.error("--streaming and --jobs are mutually exclusive")
        return 1
    args.columnar = _kernel_from_args(args) != "reference"
    obs = _Obs(args)
    try:
        detector = _detector_from_args(args, tracer=obs.tracer)
        if args.streaming:
            from repro.core.streaming import StreamingLoopDetector

            streaming = StreamingLoopDetector(detector.config,
                                              tracer=obs.tracer)
            streaming.register_metrics(obs.registry)
            if args.columnar:
                trace = _read_trace_file_columnar(args.trace, obs)
            else:
                trace = _read_trace_file(args.trace, obs)
            if obs.monitor is not None:
                loops = _stream_with_monitor(streaming, trace,
                                             obs.monitor)
            elif args.columnar:
                loops = streaming.process_trace_columnar(trace)
            else:
                loops = streaming.process_trace(trace)
            print(f"records: {streaming.stats.records}")
            print(f"streams completed: {streaming.stats.streams_completed}")
            print(f"routing loops: {len(loops)}")
            for loop in loops:
                print(f"  {loop.prefix}  {loop.start:.3f}..{loop.end:.3f}s  "
                      f"delta={loop.ttl_delta} "
                      f"replicas={loop.replica_count}")
            return 0
        if args.jobs > 1:
            from repro.parallel import ParallelLoopDetector

            engine = ParallelLoopDetector(
                detector.config, jobs=args.jobs, shards=args.shards,
                tracer=obs.tracer, columnar=args.columnar,
            )
            engine.register_metrics(obs.registry)
            if args.figures or args.json:
                # Figure statistics and JSON need the full trace in memory.
                if args.columnar:
                    ctrace = _read_trace_file_columnar(
                        args.trace, obs, link_name=args.trace
                    )
                    result = engine.detect_columnar(ctrace)
                    result.trace = ctrace.to_trace()
                else:
                    result = engine.detect(
                        _read_trace_file(args.trace, obs,
                                         link_name=args.trace)
                    )
            else:
                heartbeat = obs.heartbeat(f"detect {args.trace}")
                result = engine.detect_file(args.trace,
                                            link_name=args.trace,
                                            progress=heartbeat)
                if heartbeat is not None:
                    heartbeat.done()
            _publish_result_metrics(obs, result)
            if obs.monitor is not None:
                obs.monitor.add_state_source("parallel",
                                             engine.state_snapshot)
                # detect_file never materializes the trace; feed the
                # loops (windows then cover looped traffic only).
                obs.feed_monitor(
                    result.trace if args.figures or args.json else None,
                    result.loops,
                )
            if args.json:
                from repro.core.serialize import result_to_json

                print(result_to_json(result, extras=_json_extras(obs)))
                return 0
            print(render_summary(result))
            print()
            print(result.parallel.render())
            if args.figures:
                _print_figures(result)
            return 0
        if args.columnar:
            trace = _read_trace_file_columnar(args.trace, obs)
            result = detector.detect_columnar(trace)
            if args.figures or args.json:
                result.trace = trace.to_trace()
        else:
            trace = _read_trace_file(args.trace, obs)
            result = detector.detect(trace)
        _publish_result_metrics(obs, result)
        obs.feed_monitor(trace, result.loops)
        if args.json:
            from repro.core.serialize import result_to_json

            print(result_to_json(result, extras=_json_extras(obs)))
            return 0
        print(render_summary(result))
        if args.figures:
            _print_figures(result)
        return 0
    finally:
        obs.finish()


def _batch_progress():
    logger = get_logger("progress")
    done = [0]

    def tick(item) -> None:
        done[0] += 1
        if item.ok:
            logger.info("batch %d: %s — %d records, %d loops in %.2fs",
                        done[0], item.name, item.records, item.loops,
                        item.wall_seconds)
        else:
            logger.info("batch %d: %s — failed: %s",
                        done[0], item.name, item.error)

    return tick


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.parallel import run_batch

    kernel = _kernel_from_args(args)
    args.columnar = kernel != "reference"
    obs = _Obs(args)
    try:
        config = DetectorConfig(
            merge_gap=args.merge_gap,
            min_stream_size=args.min_stream_size,
            kernel=kernel,
        )
        result = run_batch(
            targets=args.targets or None,
            jobs=args.jobs,
            config=config,
            duration=args.duration,
            progress=_batch_progress() if obs.progress else None,
            columnar=args.columnar,
        )
        print(result.render())
        return 1 if result.failed else 0
    finally:
        obs.finish()


def _sim_progress(name: str, duration: float):
    logger = get_logger("progress")

    def tick(now: float) -> None:
        if now <= duration:
            logger.info("simulate %s: t=%.1f/%.1fs", name, now, duration)
        else:
            logger.info("simulate %s: draining, t=%.1fs", name, now)

    return tick


def _run_scenario(name: str, duration: float | None,
                  route_cache: bool = True, tracer=None,
                  progress: bool = False, live_monitor=None):
    from repro.sim import table1_scenario

    overrides = {}
    if duration is not None:
        overrides["duration"] = duration
    if not route_cache:
        overrides["route_cache"] = False
    scenario = table1_scenario(name, **overrides)
    tick = None
    if progress:
        tick = _sim_progress(name, scenario.config.duration)
    return scenario.run(tracer=tracer, progress=tick,
                        live_monitor=live_monitor)


def _render_cache_stats(engine) -> str:
    stats = engine.route_cache_stats()
    if not stats["enabled"]:
        return "route cache: disabled (reference path)"
    return (f"route cache: {stats['hits']} hits / {stats['misses']} misses "
            f"/ {stats['invalidations']} invalidations "
            f"(hit rate {stats['hit_rate']:.1%})")


def _scenario_pipeline(args: argparse.Namespace, obs: _Obs):
    """Run a scenario and detect loops on its trace, fully instrumented.

    Returns ``(run, result, lifecycle)``; ``lifecycle`` is None unless a
    trace was recorded.  The control plane logs in *simulation* time (the
    backbone re-clocks the tracer); before detection the tracer is put
    back on the wall clock so pipeline phase spans stay meaningful.
    """
    run = _run_scenario(args.scenario, args.duration,
                        route_cache=not args.no_route_cache,
                        tracer=obs.tracer if obs.tracer.enabled else None,
                        progress=obs.progress,
                        live_monitor=obs.monitor)
    run.engine.register_metrics(obs.registry)
    run.monitor.register_metrics(obs.registry)
    tracer = obs.tracer
    if tracer.enabled:
        tracer.clock = time.perf_counter
    result = LoopDetector(tracer=tracer).detect(run.trace)
    _publish_result_metrics(obs, result)
    lifecycle = None
    if tracer.enabled:
        from repro.obs.lifecycle import correlate_lifecycles

        lifecycle = correlate_lifecycles(tracer.records, result.loops)
    if obs.monitor is not None:
        # Records streamed in during the run; loops come from the
        # post-run detection pass.
        if lifecycle is not None:
            obs.monitor.add_state_source("lifecycle", lifecycle.to_dict)
        obs.feed_monitor(None, result.loops)
    return run, result, lifecycle


def _cmd_simulate(args: argparse.Namespace) -> int:
    obs = _Obs(args)
    try:
        run, result, lifecycle = _scenario_pipeline(args, obs)
        if args.json:
            from repro.core.serialize import result_to_json

            extras = {
                "ground_truth": {
                    "looped_packets": run.ground_truth_looped,
                    "ttl_expiries": run.ground_truth_expired,
                },
                "route_cache": run.engine.route_cache_stats(),
                "metrics": obs.metrics_snapshot(),
            }
            if lifecycle is not None:
                extras["lifecycle"] = lifecycle.to_dict()
            print(result_to_json(result, extras=extras))
        else:
            print(render_summary(result))
            print(f"ground-truth looped packets (AS-wide): "
                  f"{run.ground_truth_looped}")
            print(f"ground-truth TTL expiries: {run.ground_truth_expired}")
            print(_render_cache_stats(run.engine))
            if lifecycle is not None:
                print()
                print(lifecycle.render())
        if args.pcap:
            write_pcap(run.trace, args.pcap)
            if args.json:
                _logger.info("trace written to %s", args.pcap)
            else:
                print(f"trace written to {args.pcap}")
        return 0
    finally:
        obs.finish()


def _cmd_report(args: argparse.Namespace) -> int:
    obs = _Obs(args)
    try:
        run, result, lifecycle = _scenario_pipeline(args, obs)
        print(render_summary(result))
        print(_render_cache_stats(run.engine))
        if lifecycle is not None:
            print()
            print(lifecycle.render())
        _print_figures(result)
        return 0
    finally:
        obs.finish()


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.core.streaming import StreamingLoopDetector

    kernel = _kernel_from_args(args)
    args.columnar = kernel != "reference"
    obs = _Obs(args)
    try:
        config = DetectorConfig(
            merge_gap=args.merge_gap,
            min_stream_size=args.min_stream_size,
            prefix_length=args.prefix_length,
            check_prefix_consistency=not args.no_validate,
            check_gap_consistency=not args.no_validate,
            kernel=kernel,
        )
        streaming = StreamingLoopDetector(config, tracer=obs.tracer)
        streaming.register_metrics(obs.registry)
        if obs.server is not None:
            print(f"monitoring endpoints at {obs.server.url}",
                  flush=True)
        if args.columnar:
            trace = read_pcap_columnar(args.trace)
        else:
            trace = _read_trace_file(args.trace, obs)
        loops = _stream_with_monitor(streaming, trace, obs.monitor)
        obs.write_dashboard()
        if not args.no_dashboard:
            from repro.obs.dashboard import render_ascii

            print(render_ascii(obs.monitor), end="")
        else:
            print(f"records: {streaming.stats.records}")
            print(f"routing loops: {len(loops)}")
            print(f"alerts: {len(obs.monitor.alerts.history)}")
        if obs.server is not None and args.linger > 0:
            _logger.info("serving for another %.0fs", args.linger)
            time.sleep(args.linger)
        return 0
    finally:
        obs.finish()


def _cmd_fleet(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from dataclasses import replace

    from repro.fleet import FleetConfig, FleetServer, build_supervisor

    config = FleetConfig.load(args.config)
    overrides = {}
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.workers is not None:
        if args.workers < 0:
            print("error: --workers must be >= 0", file=sys.stderr)
            return 2
        overrides["workers"] = args.workers
    if overrides:
        config = replace(config, **overrides)
    supervisor = build_supervisor(config)
    port = config.port if args.serve is None else args.serve
    server = FleetServer(supervisor, host=config.host, port=port)
    server.start()
    print(f"fleet endpoints at {server.url}", flush=True)

    async def _run_until_signalled() -> None:
        # SIGTERM must stop the daemon as cleanly as Ctrl-C — CI and
        # process managers send it — and background processes in
        # non-interactive shells ignore SIGINT entirely.
        import signal

        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, supervisor.shutdown)
            except (NotImplementedError, RuntimeError):
                continue  # non-unix / nested loop: KeyboardInterrupt path
            installed.append(signum)
        try:
            await supervisor.run(run_for=args.run_for)
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)

    try:
        try:
            asyncio.run(_run_until_signalled())
        except KeyboardInterrupt:
            _logger.info("interrupted; stopping fleet")
        snapshot = supervisor.snapshot()
        if args.summary_json:
            with open(args.summary_json, "w", encoding="utf-8") as stream:
                json.dump(snapshot, stream, sort_keys=True, indent=2)
            _logger.info("fleet summary written to %s", args.summary_json)
        for row in snapshot["links"]:
            print(f"link {row['id']}: {row['state']} "
                  f"records={row['records']} loops={row['loops']} "
                  f"crashes={row['crashes_total']} "
                  f"restarts={row['restarts_total']}")
        return 0
    finally:
        server.stop()


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.obs.perf import BenchSchemaError, render_comparison

    # Schema problems are exit 2 so CI can distinguish "benchmark got
    # slower" (1, warn) from "documents don't line up" (2, hard fail).
    # Caught here rather than raised: main() maps ValueError to 1.
    try:
        return render_comparison(args.baseline, args.current,
                                 threshold=args.threshold)
    except BenchSchemaError as error:
        _logger.error("%s", error)
        return 2


def _cmd_anonymize(args: argparse.Namespace) -> int:
    from repro.net.anonymize import PrefixPreservingAnonymizer

    trace = read_pcap(args.trace)
    anonymizer = PrefixPreservingAnonymizer(args.key.encode())
    write_pcap(anonymizer.anonymize_trace(trace), args.output)
    print(f"{len(trace)} records anonymized -> {args.output}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    configure_logging(getattr(args, "log_level", "warning"))
    handlers = {
        "detect": _cmd_detect,
        "batch": _cmd_batch,
        "simulate": _cmd_simulate,
        "report": _cmd_report,
        "monitor": _cmd_monitor,
        "fleet": _cmd_fleet,
        "perf": _cmd_perf,
        "anonymize": _cmd_anonymize,
    }
    handler = handlers[args.command]
    profile_out = getattr(args, "profile", None)
    try:
        if profile_out:
            import cProfile

            profiler = cProfile.Profile()
            try:
                return profiler.runcall(handler, args)
            finally:
                profiler.dump_stats(profile_out)
                _logger.info("profile written to %s", profile_out)
        return handler(args)
    except (FileNotFoundError, KeyError, ValueError, OSError) as error:
        _logger.error("%s", error)
        return 1


if __name__ == "__main__":
    sys.exit(main())
