"""Step 1 — replica detection.

Two captured packets are replicas of one looping packet when (Sec. IV-A.1):

* their bytes are identical except for the TTL and IP header checksum
  fields (offsets 8 and 10–11 of the IP header);
* the later packet's TTL is lower by at least ``min_ttl_delta`` (2 — a
  loop needs at least two routers);
* their payloads are identical — with a 40-byte snaplen this is implied by
  byte equality of the captured suffix, which includes the TCP/UDP
  checksum exactly as the paper argues.

A chain of such pairs is a *replica stream*: one packet's repeated
crossings of the monitored link.  Detection is a single streaming pass;
singletons older than the chaining gap are evicted periodically so memory
is bounded by the loop window, not the trace length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mode
from typing import Iterable

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.trace import Trace

#: Wire offsets of the fields a loop legitimately changes.
_TTL_OFFSET = 8
_CHECKSUM_OFFSET = 10

#: Minimum captured bytes for a record to be considered (a full IP header).
_MIN_CAPTURE = 20


class ReplicaError(ValueError):
    """Raised for invalid detection parameters."""


@dataclass(slots=True, frozen=True)
class Replica:
    """One observation of a looping packet on the monitored link."""

    index: int
    timestamp: float
    ttl: int


@dataclass(slots=True)
class ReplicaStream:
    """All observations of one unique packet caught in a loop."""

    key: bytes
    replicas: list[Replica]
    src: IPv4Address
    dst: IPv4Address
    protocol: int
    first_data: bytes

    @property
    def size(self) -> int:
        """Number of replicas (Fig. 3's x-axis)."""
        return len(self.replicas)

    @property
    def start(self) -> float:
        return self.replicas[0].timestamp

    @property
    def end(self) -> float:
        return self.replicas[-1].timestamp

    @property
    def duration(self) -> float:
        """Time between first and last replica (Fig. 8's x-axis)."""
        return self.end - self.start

    @property
    def first_ttl(self) -> int:
        return self.replicas[0].ttl

    @property
    def last_ttl(self) -> int:
        return self.replicas[-1].ttl

    def ttl_deltas(self) -> list[int]:
        """Per-step TTL decrements along the stream."""
        return [
            earlier.ttl - later.ttl
            for earlier, later in zip(self.replicas, self.replicas[1:])
        ]

    @property
    def ttl_delta(self) -> int:
        """The stream's characteristic TTL delta — the number of routers
        in the loop (Fig. 2's x-axis).  The modal per-step decrement, so a
        loop that changes size mid-stream reports its dominant size."""
        deltas = self.ttl_deltas()
        if not deltas:
            raise ReplicaError("singleton stream has no TTL delta")
        return mode(deltas)

    def spacings(self) -> list[float]:
        """Per-step inter-replica times."""
        return [
            later.timestamp - earlier.timestamp
            for earlier, later in zip(self.replicas, self.replicas[1:])
        ]

    @property
    def mean_spacing(self) -> float:
        """Average inter-replica spacing — one loop round-trip (Fig. 4)."""
        spacings = self.spacings()
        if not spacings:
            raise ReplicaError("singleton stream has no spacing")
        return sum(spacings) / len(spacings)

    def dst_prefix(self, length: int = 24) -> IPv4Prefix:
        """The destination prefix used for validation and merging."""
        return self.dst.prefix(length)

    def member_indices(self) -> set[int]:
        return {replica.index for replica in self.replicas}


@dataclass(slots=True)
class _OpenStream:
    """Builder state for a stream still accepting replicas."""

    key: bytes
    first_data: bytes
    replicas: list[Replica]

    @property
    def last(self) -> Replica:
        return self.replicas[-1]


def mask_mutable_fields(data: bytes) -> bytes:
    """Zero the TTL and IP-checksum bytes; everything else must match.

    One mutable copy patched in place (two allocations) instead of the
    four-slice concatenation (six) this used to be; accepts any buffer
    (``bytes``, ``bytearray``, ``memoryview``), so the columnar paths can
    pass record views without materializing them first.
    """
    masked = bytearray(data)
    masked[_TTL_OFFSET] = 0
    masked[_CHECKSUM_OFFSET] = 0
    masked[_CHECKSUM_OFFSET + 1] = 0
    return bytes(masked)


@dataclass(slots=True)
class ReplicaScanStats:
    """Bookkeeping from one detection pass."""

    records_scanned: int = 0
    records_skipped_short: int = 0
    singletons_evicted: int = 0
    candidate_streams: int = 0


def detect_replicas(
    trace: Trace,
    min_ttl_delta: int = 2,
    max_replica_gap: float = 5.0,
    eviction_interval: int = 100_000,
    stats: ReplicaScanStats | None = None,
) -> list[ReplicaStream]:
    """Scan ``trace`` and return all candidate replica streams (size >= 2).

    ``min_ttl_delta`` is the paper's "TTL values differ by at least two";
    ``max_replica_gap`` bounds the time between consecutive replicas of
    one stream so that identical packets hours apart never chain (loop
    round-trips are milliseconds).
    """
    return detect_replicas_indexed(
        ((index, record.timestamp, record.data)
         for index, record in enumerate(trace.records)),
        min_ttl_delta=min_ttl_delta,
        max_replica_gap=max_replica_gap,
        eviction_interval=eviction_interval,
        stats=stats,
    )


def detect_replicas_indexed(
    records: Iterable[tuple[int, float, bytes]],
    min_ttl_delta: int = 2,
    max_replica_gap: float = 5.0,
    eviction_interval: int = 100_000,
    stats: ReplicaScanStats | None = None,
) -> list[ReplicaStream]:
    """Replica detection over ``(index, timestamp, data)`` triples.

    The indices are carried through to the resulting streams untouched, so
    a caller may feed a *subset* of a trace's records (with their original
    global indices) and get streams whose ``member_indices`` line up with
    the full trace.  This is what makes exact sharding possible: all
    chaining state is keyed by the masked-packet key, so any partition
    that keeps each key's records together — in time order — produces the
    same streams as one pass over everything.

    Eviction runs on the local scan position, not the carried index; it
    only discards state that could never chain again (older than the
    chaining gap), so its cadence never changes the result.
    """
    if min_ttl_delta < 1:
        raise ReplicaError(f"min_ttl_delta must be >= 1: {min_ttl_delta}")
    if max_replica_gap <= 0:
        raise ReplicaError(f"max_replica_gap must be positive: {max_replica_gap}")

    stats = stats if stats is not None else ReplicaScanStats()
    # key -> most recent singleton observation (index, timestamp, ttl, data)
    singletons: dict[bytes, tuple[int, float, int, bytes]] = {}
    # key -> open multi-replica streams for that key (usually one)
    open_streams: dict[bytes, list[_OpenStream]] = {}
    finished: list[ReplicaStream] = []

    def close_stream(stream: _OpenStream) -> None:
        finished.append(_finalize(stream))

    for position, (index, timestamp, data) in enumerate(records):
        stats.records_scanned += 1
        if len(data) < _MIN_CAPTURE:
            stats.records_skipped_short += 1
            continue
        key = mask_mutable_fields(data)
        ttl = data[_TTL_OFFSET]

        streams = open_streams.get(key)
        if streams is not None:
            attached = False
            for stream in reversed(streams):
                last = stream.last
                if (last.ttl - ttl >= min_ttl_delta
                        and timestamp - last.timestamp <= max_replica_gap):
                    stream.replicas.append(
                        Replica(index=index, timestamp=timestamp, ttl=ttl)
                    )
                    attached = True
                    break
            if attached:
                continue

        previous = singletons.get(key)
        if previous is not None:
            prev_index, prev_time, prev_ttl, prev_data = previous
            if (prev_ttl - ttl >= min_ttl_delta
                    and timestamp - prev_time <= max_replica_gap):
                stream = _OpenStream(
                    key=key,
                    first_data=prev_data,
                    replicas=[
                        Replica(index=prev_index, timestamp=prev_time,
                                ttl=prev_ttl),
                        Replica(index=index, timestamp=timestamp, ttl=ttl),
                    ],
                )
                open_streams.setdefault(key, []).append(stream)
                del singletons[key]
                continue
        singletons[key] = (index, timestamp, ttl, data)

        if eviction_interval and position and position % eviction_interval == 0:
            horizon = timestamp - max_replica_gap
            stale = [k for k, (_, t, _, _) in singletons.items() if t < horizon]
            for k in stale:
                del singletons[k]
            stats.singletons_evicted += len(stale)
            for k in list(open_streams):
                remaining = []
                for stream in open_streams[k]:
                    if stream.last.timestamp < horizon:
                        close_stream(stream)
                    else:
                        remaining.append(stream)
                if remaining:
                    open_streams[k] = remaining
                else:
                    del open_streams[k]

    for streams in open_streams.values():
        for stream in streams:
            close_stream(stream)

    finished.sort(key=stream_sort_key)
    stats.candidate_streams = len(finished)
    return finished


def _evict_stale(singletons, open_streams, horizon, finished) -> int:
    """Reference eviction semantics, shared by both kernel paths.

    Drops singletons last seen before ``horizon`` and closes open
    streams whose newest replica predates it.  Returns the number of
    singletons evicted (the reference's ``singletons_evicted`` delta).
    """
    stale = [k for k, entry in singletons.items() if entry[1] < horizon]
    for k in stale:
        del singletons[k]
    for k in list(open_streams):
        remaining = []
        for stream in open_streams[k]:
            if stream.replicas[-1].timestamp < horizon:
                finished.append(_finalize(stream))
            else:
                remaining.append(stream)
        if remaining:
            open_streams[k] = remaining
        else:
            del open_streams[k]
    return len(stale)


def _scan_regular_segment(
    records,
    masked: bytes,
    length: int,
    buf_id: int,
    buffers: list,
    singletons: dict,
    open_streams: dict,
    min_ttl_delta: int,
    max_replica_gap: float,
) -> None:
    """Tight inner loop over one eviction-free run of a regular chunk.

    ``records`` yields ``(local_offset, timestamp, index, ttl)``;
    ``masked`` is the chunk region with every record's TTL and checksum
    already zeroed, so the masked key is one ``bytes`` slice.  No
    position tracking, no length checks, no eviction tests — the caller
    guarantees uniform record length >= IP header size and no eviction
    boundary inside the segment.

    Singletons store ``buf_id`` (an index into ``buffers``) rather than
    the buffer itself: a tuple of scalars is untracked by the cyclic GC
    after its first collection, while one holding a memoryview keeps
    ~every record's tuple on the GC's walk list — measurably doubling
    kernel time on large traces.
    """
    singletons_get = singletons.get
    open_streams_get = open_streams.get
    setdefault = open_streams.setdefault
    replica = Replica
    for local, timestamp, index, ttl in records:
        key = masked[local:local + length]

        if open_streams:
            streams = open_streams_get(key)
            if streams is not None:
                attached = False
                for stream in reversed(streams):
                    last = stream.replicas[-1]
                    if (last.ttl - ttl >= min_ttl_delta
                            and timestamp - last.timestamp
                            <= max_replica_gap):
                        stream.replicas.append(
                            replica(index, timestamp, ttl)
                        )
                        attached = True
                        break
                if attached:
                    continue

        previous = singletons_get(key)
        if previous is not None:
            if (previous[2] - ttl >= min_ttl_delta
                    and timestamp - previous[1] <= max_replica_gap):
                prev_index, prev_time, prev_ttl, prev_buf, prev_off = \
                    previous
                prev_raw = buffers[prev_buf]
                setdefault(key, []).append(_OpenStream(
                    key=key,
                    first_data=bytes(
                        prev_raw[prev_off:prev_off + length]
                    ),
                    replicas=[
                        replica(prev_index, prev_time, prev_ttl),
                        replica(index, timestamp, ttl),
                    ],
                ))
                del singletons[key]
                continue
        singletons[key] = (index, timestamp, ttl, buf_id, local)


def _scan_boundary_record(
    local: int,
    timestamp: float,
    index: int,
    ttl: int,
    masked: bytes,
    length: int,
    buf_id: int,
    buffers: list,
    singletons: dict,
    open_streams: dict,
    finished: list,
    min_ttl_delta: int,
    max_replica_gap: float,
) -> int:
    """One record sitting exactly on an eviction boundary.

    Same record logic as the tight segment loop, plus the reference's
    eviction pass — which fires only when the record falls through to
    the singleton store, exactly as in :func:`detect_replicas_indexed`.
    Returns the number of singletons evicted.
    """
    key = masked[local:local + length]
    streams = open_streams.get(key)
    if streams is not None:
        for stream in reversed(streams):
            last = stream.replicas[-1]
            if (last.ttl - ttl >= min_ttl_delta
                    and timestamp - last.timestamp <= max_replica_gap):
                stream.replicas.append(Replica(index, timestamp, ttl))
                return 0
    previous = singletons.get(key)
    if previous is not None:
        prev_index, prev_time, prev_ttl, prev_buf, prev_off = previous
        if (prev_ttl - ttl >= min_ttl_delta
                and timestamp - prev_time <= max_replica_gap):
            prev_raw = buffers[prev_buf]
            open_streams.setdefault(key, []).append(_OpenStream(
                key=key,
                first_data=bytes(prev_raw[prev_off:prev_off + length]),
                replicas=[
                    Replica(prev_index, prev_time, prev_ttl),
                    Replica(index, timestamp, ttl),
                ],
            ))
            del singletons[key]
            return 0
    singletons[key] = (index, timestamp, ttl, buf_id, local)
    return _evict_stale(singletons, open_streams,
                        timestamp - max_replica_gap, finished)


def detect_replicas_columnar(
    chunks,
    min_ttl_delta: int = 2,
    max_replica_gap: float = 5.0,
    eviction_interval: int = 100_000,
    stats: ReplicaScanStats | None = None,
) -> list[ReplicaStream]:
    """The batched step-1 kernel over columnar chunks.

    Behaviourally identical to :func:`detect_replicas_indexed` fed the
    same records (the equivalence suite asserts byte-identical streams),
    but batched: for a chunk whose producer declared a uniform record
    ``stride``, the whole region is copied once into a ``bytearray``,
    every record's TTL column is pulled out with one strided slice, and
    all TTL/checksum bytes are zeroed with three C-speed strided slice
    assignments — so the per-record cost collapses to one ``bytes``
    slice for the masked key plus the dictionary probes.  Eviction
    boundaries are computed up front and the runs between them scan in
    a loop with no position arithmetic at all.

    Chunks without a declared stride (or with mixed record lengths, or
    records too short for an IP header) fall back to a per-record loop
    with a reusable masking scratch — same results, just slower.

    ``chunks`` is an iterable of :class:`~repro.net.columnar.
    ColumnarChunk` (or a :class:`~repro.net.columnar.ColumnarTrace`).
    Eviction runs on the local scan position with the same cadence as
    the reference, so its timing never changes the result.
    """
    if min_ttl_delta < 1:
        raise ReplicaError(f"min_ttl_delta must be >= 1: {min_ttl_delta}")
    if max_replica_gap <= 0:
        raise ReplicaError(f"max_replica_gap must be positive: {max_replica_gap}")
    if hasattr(chunks, "chunks"):
        chunks = chunks.chunks

    stats = stats if stats is not None else ReplicaScanStats()
    # key -> most recent singleton observation, shaped
    # (index, timestamp, ttl, buf_id, offset) — buf_id indexes
    # ``buffers`` and the pair defers materializing first_data until a
    # stream actually forms.  Scalars only: see _scan_regular_segment on
    # why the tuple must stay GC-untrackable.
    singletons: dict[bytes, tuple] = {}
    open_streams: dict[bytes, list[_OpenStream]] = {}
    finished: list[ReplicaStream] = []
    buffers: list = []

    scratch = bytearray(40)
    position = -1
    skipped_short = 0
    evicted = 0

    for chunk in chunks:
        timestamps = chunk.timestamps
        n = len(timestamps)
        if not n:
            continue
        buf = chunk.data
        offsets = chunk.offsets
        lengths = chunk.lengths
        indices = chunk.indices
        stride = chunk.stride
        index_src = (indices if indices is not None
                     else range(chunk.base_index, chunk.base_index + n))
        length = lengths[0]
        chunk_start = position + 1

        if (stride is not None and length >= _MIN_CAPTURE
                and stride >= length
                and min(lengths) == max(lengths)):
            # Regular chunk: bulk-mask the whole region at C speed.
            first = offsets[0]
            region_end = first + (n - 1) * stride + length
            raw = buf[first:region_end]
            buf_id = len(buffers)
            buffers.append(raw)
            masked = bytearray(raw)
            last_local = (n - 1) * stride
            ttls = bytes(masked[8:last_local + 9:stride])
            zeros = bytes(n)
            masked[8:last_local + 9:stride] = zeros
            masked[10:last_local + 11:stride] = zeros
            masked[11:last_local + 12:stride] = zeros
            masked = bytes(masked)
            # Record j starts at local offset j * stride — iterate a
            # range instead of shifting the offsets column per record.
            locals_range = range(0, n * stride, stride)

            if eviction_interval:
                first_multiple = (-(-chunk_start // eviction_interval)
                                  * eviction_interval) or eviction_interval
                boundaries = range(first_multiple - chunk_start, n,
                                   eviction_interval)
            else:
                boundaries = ()
            seg_start = 0
            for boundary in boundaries:
                if boundary > seg_start:
                    _scan_regular_segment(
                        zip(locals_range[seg_start:boundary],
                            timestamps[seg_start:boundary],
                            index_src[seg_start:boundary],
                            ttls[seg_start:boundary]),
                        masked, length, buf_id, buffers, singletons,
                        open_streams, min_ttl_delta, max_replica_gap,
                    )
                evicted += _scan_boundary_record(
                    locals_range[boundary], timestamps[boundary],
                    index_src[boundary], ttls[boundary],
                    masked, length, buf_id, buffers, singletons,
                    open_streams, finished, min_ttl_delta,
                    max_replica_gap,
                )
                seg_start = boundary + 1
            if seg_start == 0:
                _scan_regular_segment(
                    zip(locals_range, timestamps, index_src, ttls),
                    masked, length, buf_id, buffers, singletons,
                    open_streams, min_ttl_delta, max_replica_gap,
                )
            elif seg_start < n:
                _scan_regular_segment(
                    zip(locals_range[seg_start:], timestamps[seg_start:],
                        index_src[seg_start:], ttls[seg_start:]),
                    masked, length, buf_id, buffers, singletons,
                    open_streams, min_ttl_delta, max_replica_gap,
                )
            position = chunk_start + n - 1
            continue

        # Irregular chunk (no declared stride, mixed lengths, or
        # sub-IP-header records): per-record masking into a scratch.
        # Singletons store buf_id, never the memoryview itself — both so
        # the tuple stays GC-untrackable and so a singleton stored here
        # can be promoted by the regular path (and vice versa).
        view = memoryview(buf)
        buf_id = len(buffers)
        buffers.append(view)
        singletons_get = singletons.get
        open_streams_get = open_streams.get
        replica = Replica
        for i in range(n):
            position += 1
            length = lengths[i]
            if length < _MIN_CAPTURE:
                skipped_short += 1
                continue
            offset = offsets[i]
            end = offset + length
            if len(scratch) != length:
                scratch = bytearray(length)
            scratch[:] = view[offset:end]
            scratch[8] = 0
            scratch[10] = 0
            scratch[11] = 0
            key = bytes(scratch)
            ttl = view[offset + 8]
            timestamp = timestamps[i]
            index = index_src[i]

            streams = open_streams_get(key)
            if streams is not None:
                attached = False
                for stream in reversed(streams):
                    last = stream.replicas[-1]
                    if (last.ttl - ttl >= min_ttl_delta
                            and timestamp - last.timestamp
                            <= max_replica_gap):
                        stream.replicas.append(
                            replica(index, timestamp, ttl)
                        )
                        attached = True
                        break
                if attached:
                    continue

            previous = singletons_get(key)
            if previous is not None:
                prev_index, prev_time, prev_ttl, prev_buf, prev_off = \
                    previous
                if (prev_ttl - ttl >= min_ttl_delta
                        and timestamp - prev_time <= max_replica_gap):
                    prev_raw = buffers[prev_buf]
                    open_streams.setdefault(key, []).append(_OpenStream(
                        key=key,
                        first_data=bytes(
                            prev_raw[prev_off:prev_off + length]
                        ),
                        replicas=[
                            replica(prev_index, prev_time, prev_ttl),
                            replica(index, timestamp, ttl),
                        ],
                    ))
                    del singletons[key]
                    continue
            singletons[key] = (index, timestamp, ttl, buf_id, offset)

            if (eviction_interval and position
                    and position % eviction_interval == 0):
                evicted += _evict_stale(
                    singletons, open_streams,
                    timestamp - max_replica_gap, finished,
                )

    for streams in open_streams.values():
        for stream in streams:
            finished.append(_finalize(stream))

    stats.records_scanned += position + 1
    stats.records_skipped_short += skipped_short
    stats.singletons_evicted += evicted
    finished.sort(key=stream_sort_key)
    stats.candidate_streams = len(finished)
    return finished


#: The selectable step-1 implementations.  ``auto`` resolves to the
#: fastest tier available at runtime: ``vectorized`` with numpy
#: installed, ``columnar`` without.
KERNEL_TIERS = ("auto", "reference", "columnar", "vectorized")

#: numpy dtype per column itemsize, for viewing ``array``/``memoryview``
#: length columns without copying.
_LENGTH_DTYPES = {1: "u1", 2: "u2", 4: "u4", 8: "u8"}


def resolve_kernel(kernel: str) -> str:
    """Map a kernel tier name to the concrete tier that will run."""
    if kernel not in KERNEL_TIERS:
        raise ReplicaError(
            f"unknown kernel {kernel!r} (choose from "
            f"{', '.join(KERNEL_TIERS)})"
        )
    if kernel == "auto":
        from repro.core import vectorize

        return "vectorized" if vectorize.HAVE_NUMPY else "columnar"
    return kernel


def detect_replicas_with_kernel(
    chunks,
    kernel: str = "auto",
    min_ttl_delta: int = 2,
    max_replica_gap: float = 5.0,
    eviction_interval: int = 100_000,
    stats: ReplicaScanStats | None = None,
    profile=None,
) -> list[ReplicaStream]:
    """Run step 1 over columnar chunks with an explicit kernel tier.

    All tiers produce byte-identical streams and stats; ``kernel``
    selects only the implementation.  ``reference`` materializes
    per-record triples and runs :func:`detect_replicas_indexed` — the
    oracle the other tiers are tested against.

    ``profile`` (a :class:`~repro.obs.perf.PipelineProfile`) records one
    ``step1.kernel.<tier>`` span per call, labeled with the *resolved*
    tier so an ``auto`` run shows which implementation actually ran.
    """
    resolved = resolve_kernel(kernel)
    if profile is None:
        from repro.obs.perf import NULL_PROFILE

        profile = NULL_PROFILE
    before = stats.records_scanned if stats is not None else 0
    with profile.stage(f"step1.kernel.{resolved}") as span:
        if resolved == "reference":
            if hasattr(chunks, "chunks"):
                chunks = chunks.chunks
            triples = (
                triple for chunk in chunks
                for triple in chunk.iter_triples()
            )
            streams = detect_replicas_indexed(
                triples,
                min_ttl_delta=min_ttl_delta,
                max_replica_gap=max_replica_gap,
                eviction_interval=eviction_interval,
                stats=stats,
            )
        else:
            implementation = (detect_replicas_columnar
                              if resolved == "columnar"
                              else detect_replicas_vectorized)
            streams = implementation(
                chunks,
                min_ttl_delta=min_ttl_delta,
                max_replica_gap=max_replica_gap,
                eviction_interval=eviction_interval,
                stats=stats,
            )
        if stats is not None:
            span.add(records=stats.records_scanned - before)
    return streams


def detect_replicas_vectorized(
    chunks,
    min_ttl_delta: int = 2,
    max_replica_gap: float = 5.0,
    eviction_interval: int = 100_000,
    stats: ReplicaScanStats | None = None,
) -> list[ReplicaStream]:
    """The numpy-vectorized step-1 kernel — the third tier.

    Byte-identical to :func:`detect_replicas_indexed` and
    :func:`detect_replicas_columnar` on the same records (streams *and*
    stats), but the per-record Python work collapses to two passes:

    **Pass 1 (vectorized).**  Each regular chunk's slab is viewed as an
    ``(n, length)`` uint8 matrix via the declared stride, copied
    contiguous once, and masked with three whole-column assignments;
    the TTL column falls out of the same matrix as one slice.  Every
    masked record is hashed with one vectorized pass
    (:func:`~repro.core.vectorize.hash_rows`), and an argsort-based
    group-by over the hashes (``np.unique``) finds the records whose
    masked key appears more than once.  Only those *survivors* — a tiny
    fraction of any real trace — can ever attach, pair, or occupy a
    singleton slot that matters.  Irregular chunks are masked per
    record but hashed in the same bulk passes (grouped by record
    length), so survivors are found across chunk kinds.

    A hash collision can only create a *false* survivor (pass 2 uses
    exact byte keys), never lose a real one: equal keys always hash
    equal.  False survivors behave exactly as they would in the
    reference — they just cost a dictionary probe each.

    **Pass 2 (exact).**  The reference chaining logic replays over the
    survivors alone, interleaved — in global scan order — with the
    eviction boundaries the reference would have hit: a non-survivor
    landing on a ``position % eviction_interval == 0`` boundary always
    takes the singleton-insert path (its key is globally unique), so
    its boundary always fires; a survivor's boundary fires only when
    its replayed disposition is singleton-insert, exactly like the
    reference's ``continue`` structure.  Evictions of the (unmaterial)
    non-survivor singletons are counted vectorially afterwards from the
    fired ``(position, horizon)`` events, so ``singletons_evicted``
    matches the reference exactly.

    Falls back wholesale to :func:`detect_replicas_columnar` when numpy
    is absent or no chunk has a regular layout (the pure-python kernel
    is faster than per-record numpy hashing there) — same output either
    way.
    """
    if min_ttl_delta < 1:
        raise ReplicaError(f"min_ttl_delta must be >= 1: {min_ttl_delta}")
    if max_replica_gap <= 0:
        raise ReplicaError(f"max_replica_gap must be positive: {max_replica_gap}")
    from repro.core import vectorize

    np = vectorize.np
    if hasattr(chunks, "chunks"):
        chunks = chunks.chunks
    chunks = list(chunks)

    regular_flags = []
    if np is not None:
        for chunk in chunks:
            lengths = chunk.lengths
            n = len(lengths)
            flag = False
            if n:
                length = lengths[0]
                stride = chunk.stride
                if (stride is not None and length >= _MIN_CAPTURE
                        and stride >= length):
                    lengths_np = np.frombuffer(
                        lengths, dtype=_LENGTH_DTYPES[lengths.itemsize]
                    )
                    flag = bool((lengths_np == length).all())
            regular_flags.append(flag)
    if np is None or not any(regular_flags):
        return detect_replicas_columnar(
            chunks,
            min_ttl_delta=min_ttl_delta,
            max_replica_gap=max_replica_gap,
            eviction_interval=eviction_interval,
            stats=stats,
        )

    stats = stats if stats is not None else ReplicaScanStats()
    hash_parts = []
    ts_parts = []
    ok_parts = []
    #: Per non-empty chunk: ("r", chunk, masked_matrix, ttl_column) or
    #: ("i", chunk, keys_list, None).
    infos: list[tuple] = []
    chunk_starts: list[int] = []
    #: record length -> ([global position], [key bytes]) for bulk
    #: hashing of irregular records after the chunk loop.
    pending: dict[int, tuple[list, list]] = {}
    total = 0
    skipped_short = 0

    for chunk, flag in zip(chunks, regular_flags):
        timestamps = chunk.timestamps
        n = len(timestamps)
        if not n:
            continue
        chunk_starts.append(total)
        ts_parts.append(np.frombuffer(timestamps, dtype=np.float64, count=n))
        offsets = chunk.offsets
        lengths = chunk.lengths
        if flag:
            length = lengths[0]
            stride = chunk.stride
            first = offsets[0]
            span = (n - 1) * stride + length
            region = np.frombuffer(chunk.data, dtype=np.uint8,
                                   offset=first, count=span)
            rows = np.lib.stride_tricks.as_strided(
                region, shape=(n, length), strides=(stride, 1)
            )
            # .copy() (not ascontiguousarray) — the region buffer is
            # read-only and an already-contiguous view would be
            # returned as-is.
            masked = rows.copy()
            ttls = masked[:, _TTL_OFFSET].copy()
            masked[:, _TTL_OFFSET] = 0
            masked[:, _CHECKSUM_OFFSET] = 0
            masked[:, _CHECKSUM_OFFSET + 1] = 0
            hash_parts.append(vectorize.hash_rows(masked))
            ok_parts.append(np.ones(n, dtype=bool))
            infos.append(("r", chunk, masked, ttls))
        else:
            view = memoryview(chunk.data)
            keys: list = [None] * n
            ok = np.zeros(n, dtype=bool)
            scratch = bytearray(40)
            for i in range(n):
                length = lengths[i]
                if length < _MIN_CAPTURE:
                    skipped_short += 1
                    continue
                offset = offsets[i]
                if len(scratch) != length:
                    scratch = bytearray(length)
                scratch[:] = view[offset:offset + length]
                scratch[_TTL_OFFSET] = 0
                scratch[_CHECKSUM_OFFSET] = 0
                scratch[_CHECKSUM_OFFSET + 1] = 0
                key = bytes(scratch)
                keys[i] = key
                ok[i] = True
                bucket = pending.get(length)
                if bucket is None:
                    bucket = pending[length] = ([], [])
                bucket[0].append(total + i)
                bucket[1].append(key)
            hash_parts.append(np.zeros(n, dtype=np.uint64))
            ok_parts.append(ok)
            infos.append(("i", chunk, keys, None))
        total += n

    stats.records_scanned += total
    stats.records_skipped_short += skipped_short

    hashes = np.concatenate(hash_parts)
    ok_all = np.concatenate(ok_parts)
    ts_all = np.concatenate(ts_parts)
    for length, (positions, keys) in pending.items():
        key_rows = np.frombuffer(
            b"".join(keys), dtype=np.uint8
        ).reshape(len(keys), length)
        hashes[np.asarray(positions, dtype=np.intp)] = \
            vectorize.hash_rows(key_rows)

    _, inverse, counts = np.unique(
        hashes, return_inverse=True, return_counts=True
    )
    keep = (counts[inverse] > 1) & ok_all
    survivors = np.flatnonzero(keep)

    if eviction_interval:
        boundaries = np.arange(eviction_interval, total,
                               eviction_interval, dtype=np.intp)
        # A non-survivor on a boundary always singleton-inserts (its
        # key is unique), so its eviction fires iff it is long enough
        # to be scanned at all; survivor boundaries replay in pass 2.
        static_events = boundaries[ok_all[boundaries] & ~keep[boundaries]]
    else:
        static_events = np.empty(0, dtype=np.intp)

    starts = np.asarray(chunk_starts, dtype=np.intp)
    surv_chunk = np.searchsorted(starts, survivors, side="right") - 1
    surv_local = survivors - starts[surv_chunk]

    singletons: dict[bytes, tuple] = {}
    open_streams: dict[bytes, list[_OpenStream]] = {}
    finished: list[ReplicaStream] = []
    #: Eviction events that fired, as (position, horizon), in scan
    #: order — replayed over the non-survivors afterwards.
    fired: list[tuple[int, float]] = []
    evicted = 0

    def record_bytes(ci: int, li: int) -> bytes:
        chunk = infos[ci][1]
        offset = chunk.offsets[li]
        return bytes(
            memoryview(chunk.data)[offset:offset + chunk.lengths[li]]
        )

    static_list = static_events.tolist()
    n_static = len(static_list)
    si = 0
    for g, ci, li in zip(survivors.tolist(), surv_chunk.tolist(),
                         surv_local.tolist()):
        while si < n_static and static_list[si] < g:
            p = static_list[si]
            horizon = float(ts_all[p]) - max_replica_gap
            evicted += _evict_stale(singletons, open_streams, horizon,
                                    finished)
            fired.append((p, horizon))
            si += 1
        kind, chunk = infos[ci][0], infos[ci][1]
        if kind == "r":
            key = infos[ci][2][li].tobytes()
            ttl = int(infos[ci][3][li])
        else:
            key = infos[ci][2][li]
            ttl = chunk.data[chunk.offsets[li] + _TTL_OFFSET]
        timestamp = chunk.timestamps[li]
        indices = chunk.indices
        index = indices[li] if indices is not None else chunk.base_index + li

        streams = open_streams.get(key)
        if streams is not None:
            attached = False
            for stream in reversed(streams):
                last = stream.replicas[-1]
                if (last.ttl - ttl >= min_ttl_delta
                        and timestamp - last.timestamp <= max_replica_gap):
                    stream.replicas.append(Replica(index, timestamp, ttl))
                    attached = True
                    break
            if attached:
                continue

        previous = singletons.get(key)
        if previous is not None:
            prev_index, prev_time, prev_ttl, prev_ci, prev_li = previous
            if (prev_ttl - ttl >= min_ttl_delta
                    and timestamp - prev_time <= max_replica_gap):
                open_streams.setdefault(key, []).append(_OpenStream(
                    key=key,
                    first_data=record_bytes(prev_ci, prev_li),
                    replicas=[
                        Replica(prev_index, prev_time, prev_ttl),
                        Replica(index, timestamp, ttl),
                    ],
                ))
                del singletons[key]
                continue
        singletons[key] = (index, timestamp, ttl, ci, li)

        if eviction_interval and g and g % eviction_interval == 0:
            horizon = timestamp - max_replica_gap
            evicted += _evict_stale(singletons, open_streams, horizon,
                                    finished)
            fired.append((g, horizon))

    while si < n_static:
        p = static_list[si]
        horizon = float(ts_all[p]) - max_replica_gap
        evicted += _evict_stale(singletons, open_streams, horizon, finished)
        fired.append((p, horizon))
        si += 1

    if fired:
        # Each non-survivor singleton (never materialized) is evicted by
        # the first fired event after its insertion whose horizon passes
        # its timestamp — count them without ever building the dict.
        ns_pos = np.flatnonzero(ok_all & ~keep)
        if len(ns_pos):
            ns_ts = ts_all[ns_pos]
            ns_evicted = np.zeros(len(ns_pos), dtype=bool)
            for p, horizon in fired:
                newly = ~ns_evicted & (ns_pos < p) & (ns_ts < horizon)
                count = int(newly.sum())
                if count:
                    evicted += count
                    ns_evicted |= newly

    for streams in open_streams.values():
        for stream in streams:
            finished.append(_finalize(stream))

    stats.singletons_evicted += evicted
    finished.sort(key=stream_sort_key)
    stats.candidate_streams = len(finished)
    return finished


def stream_sort_key(stream: ReplicaStream) -> tuple[float, int]:
    """Total order on streams: start time, ties broken by the first
    replica's record index (unique across streams).  Shared by the offline
    and sharded engines so both produce byte-identical candidate lists."""
    return (stream.start, stream.replicas[0].index)


def _finalize(stream: _OpenStream) -> ReplicaStream:
    data = stream.first_data
    return ReplicaStream(
        key=stream.key,
        replicas=stream.replicas,
        src=IPv4Address.from_bytes(data[12:16]),
        dst=IPv4Address.from_bytes(data[16:20]),
        protocol=data[9],
        first_data=data,
    )
