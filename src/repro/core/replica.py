"""Step 1 — replica detection.

Two captured packets are replicas of one looping packet when (Sec. IV-A.1):

* their bytes are identical except for the TTL and IP header checksum
  fields (offsets 8 and 10–11 of the IP header);
* the later packet's TTL is lower by at least ``min_ttl_delta`` (2 — a
  loop needs at least two routers);
* their payloads are identical — with a 40-byte snaplen this is implied by
  byte equality of the captured suffix, which includes the TCP/UDP
  checksum exactly as the paper argues.

A chain of such pairs is a *replica stream*: one packet's repeated
crossings of the monitored link.  Detection is a single streaming pass;
singletons older than the chaining gap are evicted periodically so memory
is bounded by the loop window, not the trace length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mode
from typing import Iterable

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.trace import Trace

#: Wire offsets of the fields a loop legitimately changes.
_TTL_OFFSET = 8
_CHECKSUM_OFFSET = 10
_MASK_PATCH = b"\x00"
_CHECKSUM_PATCH = b"\x00\x00"

#: Minimum captured bytes for a record to be considered (a full IP header).
_MIN_CAPTURE = 20


class ReplicaError(ValueError):
    """Raised for invalid detection parameters."""


@dataclass(slots=True, frozen=True)
class Replica:
    """One observation of a looping packet on the monitored link."""

    index: int
    timestamp: float
    ttl: int


@dataclass(slots=True)
class ReplicaStream:
    """All observations of one unique packet caught in a loop."""

    key: bytes
    replicas: list[Replica]
    src: IPv4Address
    dst: IPv4Address
    protocol: int
    first_data: bytes

    @property
    def size(self) -> int:
        """Number of replicas (Fig. 3's x-axis)."""
        return len(self.replicas)

    @property
    def start(self) -> float:
        return self.replicas[0].timestamp

    @property
    def end(self) -> float:
        return self.replicas[-1].timestamp

    @property
    def duration(self) -> float:
        """Time between first and last replica (Fig. 8's x-axis)."""
        return self.end - self.start

    @property
    def first_ttl(self) -> int:
        return self.replicas[0].ttl

    @property
    def last_ttl(self) -> int:
        return self.replicas[-1].ttl

    def ttl_deltas(self) -> list[int]:
        """Per-step TTL decrements along the stream."""
        return [
            earlier.ttl - later.ttl
            for earlier, later in zip(self.replicas, self.replicas[1:])
        ]

    @property
    def ttl_delta(self) -> int:
        """The stream's characteristic TTL delta — the number of routers
        in the loop (Fig. 2's x-axis).  The modal per-step decrement, so a
        loop that changes size mid-stream reports its dominant size."""
        deltas = self.ttl_deltas()
        if not deltas:
            raise ReplicaError("singleton stream has no TTL delta")
        return mode(deltas)

    def spacings(self) -> list[float]:
        """Per-step inter-replica times."""
        return [
            later.timestamp - earlier.timestamp
            for earlier, later in zip(self.replicas, self.replicas[1:])
        ]

    @property
    def mean_spacing(self) -> float:
        """Average inter-replica spacing — one loop round-trip (Fig. 4)."""
        spacings = self.spacings()
        if not spacings:
            raise ReplicaError("singleton stream has no spacing")
        return sum(spacings) / len(spacings)

    def dst_prefix(self, length: int = 24) -> IPv4Prefix:
        """The destination prefix used for validation and merging."""
        return self.dst.prefix(length)

    def member_indices(self) -> set[int]:
        return {replica.index for replica in self.replicas}


@dataclass(slots=True)
class _OpenStream:
    """Builder state for a stream still accepting replicas."""

    key: bytes
    first_data: bytes
    replicas: list[Replica]

    @property
    def last(self) -> Replica:
        return self.replicas[-1]


def mask_mutable_fields(data: bytes) -> bytes:
    """Zero the TTL and IP-checksum bytes; everything else must match."""
    return (
        data[:_TTL_OFFSET]
        + _MASK_PATCH
        + data[_TTL_OFFSET + 1:_CHECKSUM_OFFSET]
        + _CHECKSUM_PATCH
        + data[_CHECKSUM_OFFSET + 2:]
    )


@dataclass(slots=True)
class ReplicaScanStats:
    """Bookkeeping from one detection pass."""

    records_scanned: int = 0
    records_skipped_short: int = 0
    singletons_evicted: int = 0
    candidate_streams: int = 0


def detect_replicas(
    trace: Trace,
    min_ttl_delta: int = 2,
    max_replica_gap: float = 5.0,
    eviction_interval: int = 100_000,
    stats: ReplicaScanStats | None = None,
) -> list[ReplicaStream]:
    """Scan ``trace`` and return all candidate replica streams (size >= 2).

    ``min_ttl_delta`` is the paper's "TTL values differ by at least two";
    ``max_replica_gap`` bounds the time between consecutive replicas of
    one stream so that identical packets hours apart never chain (loop
    round-trips are milliseconds).
    """
    return detect_replicas_indexed(
        ((index, record.timestamp, record.data)
         for index, record in enumerate(trace.records)),
        min_ttl_delta=min_ttl_delta,
        max_replica_gap=max_replica_gap,
        eviction_interval=eviction_interval,
        stats=stats,
    )


def detect_replicas_indexed(
    records: Iterable[tuple[int, float, bytes]],
    min_ttl_delta: int = 2,
    max_replica_gap: float = 5.0,
    eviction_interval: int = 100_000,
    stats: ReplicaScanStats | None = None,
) -> list[ReplicaStream]:
    """Replica detection over ``(index, timestamp, data)`` triples.

    The indices are carried through to the resulting streams untouched, so
    a caller may feed a *subset* of a trace's records (with their original
    global indices) and get streams whose ``member_indices`` line up with
    the full trace.  This is what makes exact sharding possible: all
    chaining state is keyed by the masked-packet key, so any partition
    that keeps each key's records together — in time order — produces the
    same streams as one pass over everything.

    Eviction runs on the local scan position, not the carried index; it
    only discards state that could never chain again (older than the
    chaining gap), so its cadence never changes the result.
    """
    if min_ttl_delta < 1:
        raise ReplicaError(f"min_ttl_delta must be >= 1: {min_ttl_delta}")
    if max_replica_gap <= 0:
        raise ReplicaError(f"max_replica_gap must be positive: {max_replica_gap}")

    stats = stats if stats is not None else ReplicaScanStats()
    # key -> most recent singleton observation (index, timestamp, ttl, data)
    singletons: dict[bytes, tuple[int, float, int, bytes]] = {}
    # key -> open multi-replica streams for that key (usually one)
    open_streams: dict[bytes, list[_OpenStream]] = {}
    finished: list[ReplicaStream] = []

    def close_stream(stream: _OpenStream) -> None:
        finished.append(_finalize(stream))

    for position, (index, timestamp, data) in enumerate(records):
        stats.records_scanned += 1
        if len(data) < _MIN_CAPTURE:
            stats.records_skipped_short += 1
            continue
        key = mask_mutable_fields(data)
        ttl = data[_TTL_OFFSET]

        streams = open_streams.get(key)
        if streams is not None:
            attached = False
            for stream in reversed(streams):
                last = stream.last
                if (last.ttl - ttl >= min_ttl_delta
                        and timestamp - last.timestamp <= max_replica_gap):
                    stream.replicas.append(
                        Replica(index=index, timestamp=timestamp, ttl=ttl)
                    )
                    attached = True
                    break
            if attached:
                continue

        previous = singletons.get(key)
        if previous is not None:
            prev_index, prev_time, prev_ttl, prev_data = previous
            if (prev_ttl - ttl >= min_ttl_delta
                    and timestamp - prev_time <= max_replica_gap):
                stream = _OpenStream(
                    key=key,
                    first_data=prev_data,
                    replicas=[
                        Replica(index=prev_index, timestamp=prev_time,
                                ttl=prev_ttl),
                        Replica(index=index, timestamp=timestamp, ttl=ttl),
                    ],
                )
                open_streams.setdefault(key, []).append(stream)
                del singletons[key]
                continue
        singletons[key] = (index, timestamp, ttl, data)

        if eviction_interval and position and position % eviction_interval == 0:
            horizon = timestamp - max_replica_gap
            stale = [k for k, (_, t, _, _) in singletons.items() if t < horizon]
            for k in stale:
                del singletons[k]
            stats.singletons_evicted += len(stale)
            for k in list(open_streams):
                remaining = []
                for stream in open_streams[k]:
                    if stream.last.timestamp < horizon:
                        close_stream(stream)
                    else:
                        remaining.append(stream)
                if remaining:
                    open_streams[k] = remaining
                else:
                    del open_streams[k]

    for streams in open_streams.values():
        for stream in streams:
            close_stream(stream)

    finished.sort(key=stream_sort_key)
    stats.candidate_streams = len(finished)
    return finished


def stream_sort_key(stream: ReplicaStream) -> tuple[float, int]:
    """Total order on streams: start time, ties broken by the first
    replica's record index (unique across streams).  Shared by the offline
    and sharded engines so both produce byte-identical candidate lists."""
    return (stream.start, stream.replicas[0].index)


def _finalize(stream: _OpenStream) -> ReplicaStream:
    data = stream.first_data
    return ReplicaStream(
        key=stream.key,
        replicas=stream.replicas,
        src=IPv4Address.from_bytes(data[12:16]),
        dst=IPv4Address.from_bytes(data[16:20]),
        protocol=data[9],
        first_data=data,
    )
