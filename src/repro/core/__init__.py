"""The paper's contribution: routing-loop detection from packet traces.

The pipeline has the paper's three steps (Sec. IV-A):

1. :mod:`repro.core.replica` — find *replicas*: packets identical except
   for TTL (differing by >= 2) and IP header checksum, chained into
   candidate replica streams;
2. :mod:`repro.core.streams` — validate candidate streams: drop 2-element
   streams (link-layer duplicates) and streams that coexist with
   non-looped packets to the same /24;
3. :mod:`repro.core.merge` — merge validated streams into routing loops
   per destination /24, joining streams that overlap or sit less than a
   minute apart.

:mod:`repro.core.detector` wraps the steps into one call;
:mod:`repro.core.analysis` computes every figure's statistic;
:mod:`repro.core.impact` quantifies loss/delay effects;
:mod:`repro.core.report` renders the paper's tables.
"""

from repro.core.replica import Replica, ReplicaStream, detect_replicas
from repro.core.streams import ValidationResult, validate_streams
from repro.core.merge import RoutingLoop, merge_streams
from repro.core.detector import DetectionResult, DetectorConfig, LoopDetector
from repro.core.analysis import (
    classify_record,
    destination_timeseries,
    loop_duration_cdf,
    spacing_cdf,
    stream_duration_cdf,
    stream_size_cdf,
    traffic_type_distribution,
    ttl_delta_distribution,
)
from repro.core.impact import (
    DelayImpact,
    LossImpact,
    QueueingImpact,
    ReorderingImpact,
    UtilizationOverhead,
    delay_impact_from_engine,
    escape_analysis,
    loss_impact_from_engine,
    queueing_impact_from_engine,
    reordering_impact_from_engine,
    utilization_overhead,
)
from repro.core.streaming import StreamingLoopDetector
from repro.core.correlate import (
    LoopAttribution,
    LoopCause,
    cause_summary,
    correlate_loops,
)
from repro.core.persistent import (
    ClassifiedLoop,
    LoopClass,
    PersistenceCriteria,
    classify_loops,
    inject_static_route_conflict,
    persistent_fraction,
)
from repro.core.serialize import (
    loops_from_json,
    result_to_dict,
    result_to_json,
)
from repro.core.vantage import (
    LoopEvent,
    VantageSummary,
    detect_on_all,
    merge_loop_events,
    summarize_vantages,
)

__all__ = [
    "Replica",
    "ReplicaStream",
    "detect_replicas",
    "ValidationResult",
    "validate_streams",
    "RoutingLoop",
    "merge_streams",
    "LoopDetector",
    "DetectorConfig",
    "DetectionResult",
    "ttl_delta_distribution",
    "stream_size_cdf",
    "spacing_cdf",
    "stream_duration_cdf",
    "loop_duration_cdf",
    "traffic_type_distribution",
    "destination_timeseries",
    "classify_record",
    "escape_analysis",
    "loss_impact_from_engine",
    "delay_impact_from_engine",
    "reordering_impact_from_engine",
    "utilization_overhead",
    "LossImpact",
    "DelayImpact",
    "ReorderingImpact",
    "UtilizationOverhead",
    "QueueingImpact",
    "queueing_impact_from_engine",
    "StreamingLoopDetector",
    "LoopCause",
    "LoopAttribution",
    "correlate_loops",
    "cause_summary",
    "LoopClass",
    "ClassifiedLoop",
    "PersistenceCriteria",
    "classify_loops",
    "persistent_fraction",
    "inject_static_route_conflict",
    "result_to_dict",
    "result_to_json",
    "loops_from_json",
    "LoopEvent",
    "VantageSummary",
    "detect_on_all",
    "merge_loop_events",
    "summarize_vantages",
]
