"""Plain-text rendering of the paper's tables and figure series.

The benchmark harness prints these so a run's output can be compared
side-by-side with the paper's Tables I–II and Figures 2–9.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.analysis import (
    TRAFFIC_TYPE_LABELS,
    destination_class_fractions,
    traffic_type_fractions,
)
from repro.core.detector import DetectionResult
from repro.stats.cdf import EmpiricalCdf
from repro.stats.hist import CategoricalDistribution


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned text table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in cells)) if cells
        else len(header)
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def table1_row(name: str, result: DetectionResult) -> list[object]:
    """One Table I row: length, avg bandwidth, packets, looped packets."""
    trace = result.trace
    return [
        name,
        f"{trace.duration:.1f}",
        f"{trace.average_bandwidth_bps() / 1e6:.1f}",
        len(trace),
        result.looped_packet_count,
    ]


def render_table1(results: dict[str, DetectionResult]) -> str:
    """Table I: details of traces."""
    return format_table(
        ["Trace", "Length (s)", "Avg BW (Mbps)", "Packets", "Looped Packets"],
        [table1_row(name, result) for name, result in results.items()],
        title="Table I — details of traces",
    )


def render_table2(results: dict[str, DetectionResult]) -> str:
    """Table II: replica streams vs. merged routing loops."""
    return format_table(
        ["Trace", "Replica Streams", "Routing Loops"],
        [
            [name, result.stream_count, result.loop_count]
            for name, result in results.items()
        ],
        title="Table II — number of routing loops",
    )


def render_distribution(distribution: CategoricalDistribution,
                        title: str) -> str:
    """A categorical distribution (Fig. 2 style) as value/fraction rows."""
    total = distribution.total
    rows = [
        [category, count, f"{count / total:.3f}" if total else "-"]
        for category, count in sorted(distribution.counts.items())
    ]
    return format_table(["value", "count", "fraction"], rows, title=title)


def render_traffic_types(distribution: CategoricalDistribution,
                         title: str) -> str:
    """Figure 5/6 style: per-label fraction of packets."""
    fractions = traffic_type_fractions(distribution)
    rows = [
        [label, f"{fractions.get(label, 0.0):.4f}"]
        for label in TRAFFIC_TYPE_LABELS
    ]
    return format_table(["type", "fraction of packets"], rows, title=title)


def render_cdf(cdf: EmpiricalCdf, title: str, unit: str = "",
               quantiles: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9,
                                             0.95, 0.99),
               plot: bool = False, log_x: bool = False) -> str:
    """A CDF (Figs. 3/4/8/9 style) as quantile rows.

    With ``plot=True`` the quantile table is followed by an ASCII
    rendering of the curve itself (steps included), so the output can be
    compared to the paper's figure by eye.
    """
    if cdf.empty:
        return f"{title}\n(no samples)"
    rows = [[f"p{int(q * 100)}", f"{cdf.quantile(q):.6g}{unit}"]
            for q in quantiles]
    rows.append(["n", str(cdf.n)])
    rows.append(["min", f"{cdf.min:.6g}{unit}"])
    rows.append(["max", f"{cdf.max:.6g}{unit}"])
    text = format_table(["quantile", "value"], rows, title=title)
    if plot:
        from repro.stats.ascii_plot import cdf_plot

        text += "\n" + cdf_plot(cdf, log_x=log_x)
    return text


def render_figure7_scatter(result: DetectionResult,
                           title: str = "Figure 7 — looped destinations "
                                        "over time") -> str:
    """Figure 7's scatter: stream start time vs destination address."""
    from repro.core.analysis import destination_timeseries
    from repro.stats.ascii_plot import scatter_plot

    points = [(t, float(dst.value))
              for t, dst in destination_timeseries(result.streams)]
    return scatter_plot(points, title=title, x_label="time (s)",
                        y_label="destination address")


def render_destination_classes(result: DetectionResult) -> str:
    """Figure 7 companion: classful distribution of looped destinations."""
    fractions = destination_class_fractions(result.streams)
    rows = [[name, f"{fraction:.3f}"]
            for name, fraction in sorted(fractions.items())]
    return format_table(
        ["address class", "fraction of streams"], rows,
        title="Figure 7 — looped destination address classes",
    )


def render_summary(result: DetectionResult) -> str:
    """A one-trace overview used by the CLI."""
    lines = [
        f"trace: {result.trace.link_name or '(unnamed)'}",
        f"records: {len(result.trace)}",
        f"duration: {result.trace.duration:.3f} s",
        f"candidate streams: {len(result.candidate_streams)}",
        f"validated streams: {result.stream_count}",
        f"  rejected (too small): {result.validation.rejected_too_small}",
        f"  rejected (prefix conflict): "
        f"{result.validation.rejected_prefix_conflict}",
        f"routing loops: {result.loop_count}",
        f"looped packets: {result.looped_packet_count}",
        f"looped records: {result.looped_record_count}",
    ]
    return "\n".join(lines)
