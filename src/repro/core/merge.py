"""Step 3 — merging replica streams into routing loops.

One routing loop replicates many packets, so validated streams are merged
per destination /24 (Sec. IV-A.3):

* streams that **overlap in time** merge unconditionally — they are almost
  certainly the same loop;
* streams separated by less than ``merge_gap`` (one minute by default;
  the paper found 2- and 5-minute gaps change little, which the ablation
  bench reproduces) also merge, *provided* no non-looped packet to the
  prefix crossed the link inside the bridged gap — the same consistency
  rule as validation, applied to the gap.

Each merged set is one detected **routing loop**, bounded by its first and
last replica (Table II counts these; Fig. 9 plots their durations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addr import IPv4Prefix
from repro.net.trace import Trace
from repro.core.replica import ReplicaStream, stream_sort_key
from repro.core.streams import PrefixIndex


class MergeError(ValueError):
    """Raised for invalid merge parameters."""


@dataclass(slots=True)
class RoutingLoop:
    """A detected routing loop: merged replica streams to one prefix."""

    prefix: IPv4Prefix
    streams: list[ReplicaStream]

    @property
    def start(self) -> float:
        return min(stream.start for stream in self.streams)

    @property
    def end(self) -> float:
        return max(stream.end for stream in self.streams)

    @property
    def duration(self) -> float:
        """Loop lifetime bound: first to last replica (Fig. 9's x-axis)."""
        return self.end - self.start

    @property
    def stream_count(self) -> int:
        return len(self.streams)

    @property
    def replica_count(self) -> int:
        return sum(stream.size for stream in self.streams)

    @property
    def ttl_delta(self) -> int:
        """The loop's hop count: modal TTL delta across member streams."""
        from statistics import mode

        return mode(stream.ttl_delta for stream in self.streams)


def merge_streams(
    streams: list[ReplicaStream],
    trace: Trace,
    merge_gap: float = 60.0,
    prefix_length: int = 24,
    check_gap_consistency: bool = True,
    prefix_index: PrefixIndex | None = None,
    candidates: list[ReplicaStream] | None = None,
) -> list[RoutingLoop]:
    """Merge validated streams into routing loops.

    The gap-quietness rule uses the same membership definition as
    validation: a record counts as "looping" when it belongs to *any*
    candidate replica stream, including 2-element ones that failed the
    size rule — those packets did loop, they just are not independent
    evidence.  Pass ``candidates`` (the pre-validation stream list) to
    get that behaviour; it defaults to ``streams``.

    Returns loops sorted by start time.
    """
    if merge_gap < 0:
        raise MergeError(f"merge_gap must be non-negative: {merge_gap}")
    if not streams:
        return []
    if check_gap_consistency and prefix_index is None:
        prefix_index = PrefixIndex(trace, prefix_length)

    members: set[int] = set()
    for stream in (candidates if candidates is not None else streams):
        members.update(stream.member_indices())

    by_prefix: dict[IPv4Prefix, list[ReplicaStream]] = {}
    for stream in streams:
        by_prefix.setdefault(stream.dst_prefix(prefix_length), []).append(stream)

    loops: list[RoutingLoop] = []
    for prefix, group in by_prefix.items():
        group.sort(key=stream_sort_key)
        current: list[ReplicaStream] = [group[0]]
        current_end = group[0].end
        for stream in group[1:]:
            if stream.start <= current_end:
                # Overlap in time: same loop.
                current.append(stream)
                current_end = max(current_end, stream.end)
                continue
            gap = stream.start - current_end
            if gap < merge_gap and _gap_is_quiet(
                prefix, current_end, stream.start, members,
                prefix_index, check_gap_consistency,
            ):
                current.append(stream)
                current_end = max(current_end, stream.end)
                continue
            loops.append(RoutingLoop(prefix=prefix, streams=current))
            current = [stream]
            current_end = stream.end
        loops.append(RoutingLoop(prefix=prefix, streams=current))

    loops.sort(key=lambda loop: loop.start)
    return loops


def _gap_is_quiet(
    prefix: IPv4Prefix,
    gap_start: float,
    gap_end: float,
    members: set[int],
    prefix_index: PrefixIndex | None,
    check: bool,
) -> bool:
    """True when no non-looped packet to ``prefix`` crossed in the gap."""
    if not check:
        return True
    assert prefix_index is not None
    return not prefix_index.has_non_member(prefix, gap_start, gap_end, members)
