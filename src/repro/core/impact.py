"""Loss, delay, reordering and utilization impact of loops (Sec. VI).

Several vantage points:

* **trace-based** (:func:`escape_analysis`,
  :func:`utilization_overhead`) — what an operator can infer from the
  monitor alone: a stream whose final replica still had more TTL than
  one loop round-trip consumed *escaped* the loop; replica crossings
  beyond each packet's first are pure overhead bytes on the link.
* **simulator-based** (:func:`loss_impact_from_engine`,
  :func:`delay_impact_from_engine`,
  :func:`reordering_impact_from_engine`) — the ground truth the paper
  could not see: per-minute TTL-expiry loss fractions, exact extra delay
  of looped-but-delivered packets, and the out-of-order deliveries the
  paper notes escaped packets cause.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.replica import ReplicaStream
from repro.net.trace import Trace
from repro.routing.forwarding import ForwardingEngine, PacketFate
from repro.stats.cdf import EmpiricalCdf
from repro.stats.timeseries import BucketSeries


@dataclass(slots=True)
class EscapeAnalysis:
    """Trace-level escape/expiry split of looping packets."""

    total_streams: int
    escaped: int
    expired: int
    escape_fraction: float
    extra_delay_cdf: EmpiricalCdf

    @property
    def expiry_fraction(self) -> float:
        if self.total_streams == 0:
            return 0.0
        return self.expired / self.total_streams


def escape_analysis(streams: Sequence[ReplicaStream]) -> EscapeAnalysis:
    """Classify each stream's packet as escaped or expired, from the trace.

    A packet expires in the loop when its TTL runs out: the last observed
    replica has ``ttl <= ttl_delta`` (it cannot complete another loop
    round).  A last replica with more TTL than that means the packet
    stopped looping while still alive — it escaped when routing converged.
    The extra delay of an escaped packet is (at least) the time it spent
    looping: the stream duration plus one final traversal.
    """
    escaped = 0
    expired = 0
    delays: list[float] = []
    for stream in streams:
        delta = stream.ttl_delta
        if stream.last_ttl <= delta:
            expired += 1
        else:
            escaped += 1
            if stream.size >= 2:
                final_round = stream.mean_spacing
            else:
                final_round = 0.0
            delays.append(stream.duration + final_round)
    total = len(streams)
    return EscapeAnalysis(
        total_streams=total,
        escaped=escaped,
        expired=expired,
        escape_fraction=escaped / total if total else 0.0,
        extra_delay_cdf=EmpiricalCdf.from_samples(delays),
    )


@dataclass(slots=True)
class LossImpact:
    """Per-minute loss attribution from the simulator's ground truth."""

    loop_loss_by_minute: BucketSeries
    total_loss_by_minute: BucketSeries
    packets_by_minute: BucketSeries
    overall_loss_fraction: float
    overall_loop_loss_fraction: float
    peak_loop_share_of_loss: float
    peak_loop_loss_rate: float


_LOSS_FATES = (
    PacketFate.TTL_EXPIRED,
    PacketFate.LINK_DOWN,
    PacketFate.QUEUE_DROP,
    PacketFate.NO_ROUTE,
)


def loss_impact_from_engine(engine: ForwardingEngine,
                            bucket_width: float = 60.0) -> LossImpact:
    """Attribute packet loss to loops, per minute (Sec. VI's "up to 9% of
    packet loss per minute"; TTL expiry is loss caused by loops)."""
    loop_loss = BucketSeries(width=bucket_width)
    total_loss = BucketSeries(width=bucket_width)
    packets = BucketSeries(width=bucket_width)
    for minute, count in engine.injected_by_minute.items():
        packets.counts[int(minute * 60 // bucket_width)] = float(count)
    for minute, fates in engine.loss_by_minute.items():
        bucket = int(minute * 60 // bucket_width)
        for fate, count in fates.items():
            if fate is PacketFate.TTL_EXPIRED:
                loop_loss.add(bucket * bucket_width, count)
            if fate in _LOSS_FATES:
                total_loss.add(bucket * bucket_width, count)
    injected = engine.packets_injected or 1
    lost = sum(engine.fate_counts[fate] for fate in _LOSS_FATES)
    loop_lost = engine.fate_counts[PacketFate.TTL_EXPIRED]
    return LossImpact(
        loop_loss_by_minute=loop_loss,
        total_loss_by_minute=total_loss,
        packets_by_minute=packets,
        overall_loss_fraction=lost / injected,
        overall_loop_loss_fraction=loop_lost / injected,
        peak_loop_share_of_loss=loop_loss.max_ratio(total_loss),
        peak_loop_loss_rate=loop_loss.max_ratio(packets),
    )


@dataclass(slots=True)
class DelayImpact:
    """Delay experienced by packets that escaped a loop (ground truth)."""

    escaped_count: int
    mean_normal_delay: float
    extra_delay_cdf: EmpiricalCdf

    @property
    def mean_extra_delay(self) -> float:
        if self.extra_delay_cdf.empty:
            return 0.0
        return self.extra_delay_cdf.mean()


def delay_impact_from_engine(engine: ForwardingEngine) -> DelayImpact:
    """Extra delay of looped-but-delivered packets vs. the normal transit
    time (the paper reports 25–300 ms of added delay)."""
    normal = engine.mean_normal_delay()
    extras = [
        max(0.0, delay - normal)
        for delay, _ in engine.looped_delivered_delays
    ]
    return DelayImpact(
        escaped_count=len(extras),
        mean_normal_delay=normal,
        extra_delay_cdf=EmpiricalCdf.from_samples(extras),
    )


@dataclass(slots=True)
class UtilizationOverhead:
    """Extra link load caused by replica crossings (trace-based).

    Every crossing of a looping packet beyond its first is a byte-for-
    byte duplicate the link would not otherwise carry; the paper notes
    this inflates utilization and the queueing delay of innocent
    traffic.
    """

    total_bytes: int
    overhead_bytes: int
    overhead_by_minute: BucketSeries
    bytes_by_minute: BucketSeries

    @property
    def overall_overhead_fraction(self) -> float:
        if self.total_bytes == 0:
            return 0.0
        return self.overhead_bytes / self.total_bytes

    @property
    def peak_minute_overhead_fraction(self) -> float:
        return self.overhead_by_minute.max_ratio(self.bytes_by_minute)


def utilization_overhead(
    trace: Trace,
    streams: Sequence[ReplicaStream],
    bucket_width: float = 60.0,
) -> UtilizationOverhead:
    """Byte overhead of looping on the monitored link, per minute."""
    bytes_by_minute = BucketSeries(width=bucket_width)
    for record in trace:
        bytes_by_minute.add(record.timestamp, record.wire_length)
    overhead = BucketSeries(width=bucket_width)
    overhead_bytes = 0
    for stream in streams:
        # All replicas after the first are overhead crossings.
        for replica in stream.replicas[1:]:
            wire = trace[replica.index].wire_length
            overhead.add(replica.timestamp, wire)
            overhead_bytes += wire
    return UtilizationOverhead(
        total_bytes=trace.total_bytes,
        overhead_bytes=overhead_bytes,
        overhead_by_minute=overhead,
        bytes_by_minute=bytes_by_minute,
    )


@dataclass(slots=True)
class ReorderingImpact:
    """Out-of-order deliveries caused by loop-delayed packets.

    The paper: "packets that escape a loop can be delivered
    out-of-order".  A delivered looped packet is *reordered* when a
    packet of the same flow injected after it was delivered before it.
    """

    flows_with_looped_deliveries: int
    reordered_deliveries: int
    total_looped_deliveries: int

    @property
    def reordering_fraction(self) -> float:
        if self.total_looped_deliveries == 0:
            return 0.0
        return self.reordered_deliveries / self.total_looped_deliveries


def reordering_impact_from_engine(
    engine: ForwardingEngine,
) -> ReorderingImpact:
    """Measure reordering among looped-but-delivered packets.

    Uses the audit channel: for each delivered looped packet, check
    whether any later-injected packet to the same destination address
    was delivered earlier (destination address approximates the flow —
    the audit does not retain ports).
    """
    # Delivered packets grouped by destination, in injection order.
    by_dst: dict[int, list] = {}
    for audit in engine.audits:
        if audit.fate is PacketFate.DELIVERED:
            by_dst.setdefault(audit.dst.value, []).append(audit)
    flows = set()
    reordered = 0
    total = 0
    for audits in by_dst.values():
        audits.sort(key=lambda audit: audit.injected_at)
        for i, audit in enumerate(audits):
            if not audit.looped:
                continue
            total += 1
            flows.add(audit.dst.value)
            if any(later.fate_time < audit.fate_time
                   for later in audits[i + 1:]):
                reordered += 1
    return ReorderingImpact(
        flows_with_looped_deliveries=len(flows),
        reordered_deliveries=reordered,
        total_looped_deliveries=total,
    )


@dataclass(slots=True)
class QueueingImpact:
    """Queueing delay experienced by transmissions, per minute.

    The paper's companion analysis: replica crossings add load, which
    raises the queueing delay of packets that are *not* in the loop.
    """

    mean_queue_delay_by_minute: dict[int, float]
    loop_loss_by_minute: BucketSeries

    @property
    def overall_mean_queue_delay(self) -> float:
        if not self.mean_queue_delay_by_minute:
            return 0.0
        return (sum(self.mean_queue_delay_by_minute.values())
                / len(self.mean_queue_delay_by_minute))

    def loop_minutes_vs_quiet_minutes(self) -> tuple[float, float]:
        """Mean per-minute queueing delay in (loop-active, quiet) minutes."""
        active: list[float] = []
        quiet: list[float] = []
        for minute, delay in self.mean_queue_delay_by_minute.items():
            if self.loop_loss_by_minute.get(minute) > 0:
                active.append(delay)
            else:
                quiet.append(delay)
        mean_active = sum(active) / len(active) if active else 0.0
        mean_quiet = sum(quiet) / len(quiet) if quiet else 0.0
        return mean_active, mean_quiet


def queueing_impact_from_engine(engine: ForwardingEngine) -> QueueingImpact:
    """Per-minute mean queue wait, alongside loop activity.

    Loop activity per minute counts packets that revisited a router
    (whether they later escaped or expired).
    """
    means: dict[int, float] = {}
    for minute, total in engine.queue_delay_by_minute.items():
        count = engine.transmissions_by_minute.get(minute, 0)
        if count:
            means[minute] = total / count
    loop_activity = BucketSeries(width=60.0)
    for minute, count in engine.looped_by_minute.items():
        loop_activity.add(minute * 60.0, count)
    return QueueingImpact(
        mean_queue_delay_by_minute=means,
        loop_loss_by_minute=loop_activity,
    )
