"""The loop detector facade: all three steps behind one call.

    >>> detector = LoopDetector()
    >>> result = detector.detect(trace)
    >>> len(result.loops), result.looped_packet_count

``DetectorConfig`` exposes every knob the paper discusses so ablations
(merge gap, validation on/off, prefix length) are one-liners.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.trace import Trace
from repro.obs.perf import NULL_PROFILE
from repro.obs.tracing import NULL_TRACER
from repro.core.merge import RoutingLoop, merge_streams
from repro.core.replica import (
    KERNEL_TIERS,
    ReplicaScanStats,
    ReplicaStream,
    detect_replicas,
    detect_replicas_with_kernel,
)
from repro.core.streams import PrefixIndex, ValidationResult, validate_streams


class DetectorError(ValueError):
    """Raised for invalid detector configuration."""


@dataclass(slots=True, frozen=True)
class DetectorConfig:
    """Tunable parameters of the detection pipeline.

    Defaults are the paper's choices: TTL delta >= 2, streams of >= 3
    replicas, /24 validation granularity, 60-second merge gap.
    """

    min_ttl_delta: int = 2
    max_replica_gap: float = 5.0
    min_stream_size: int = 3
    prefix_length: int = 24
    check_prefix_consistency: bool = True
    merge_gap: float = 60.0
    check_gap_consistency: bool = True
    eviction_interval: int = 100_000
    #: Step-1 kernel tier for columnar inputs (:meth:`LoopDetector.
    #: detect_columnar` and the parallel slab workers): ``auto``
    #: resolves to ``vectorized`` when numpy is available, else
    #: ``columnar``.  All tiers are byte-identical; this knob only
    #: picks the implementation.  Materialized-trace entry points
    #: (:meth:`LoopDetector.detect`) always run the reference kernel.
    kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.min_ttl_delta < 1:
            raise DetectorError("min_ttl_delta must be >= 1")
        if self.kernel not in KERNEL_TIERS:
            raise DetectorError(
                f"kernel must be one of {', '.join(KERNEL_TIERS)}: "
                f"{self.kernel!r}"
            )
        if self.min_stream_size < 2:
            raise DetectorError("min_stream_size must be >= 2")
        if not 8 <= self.prefix_length <= 32:
            raise DetectorError("prefix_length must be in [8, 32]")
        if self.merge_gap < 0:
            raise DetectorError("merge_gap must be non-negative")


@dataclass(slots=True)
class DetectionResult:
    """Everything the pipeline produced for one trace."""

    trace: Trace
    config: DetectorConfig
    candidate_streams: list[ReplicaStream]
    validation: ValidationResult
    loops: list[RoutingLoop]
    scan_stats: ReplicaScanStats

    @property
    def streams(self) -> list[ReplicaStream]:
        """The validated replica streams (Table II's first column)."""
        return self.validation.valid

    @property
    def stream_count(self) -> int:
        return len(self.validation.valid)

    @property
    def loop_count(self) -> int:
        """Detected routing loops (Table II's second column)."""
        return len(self.loops)

    @property
    def looped_packet_count(self) -> int:
        """Unique packets caught in loops (Table I's last column): one per
        validated replica stream, since each stream is one packet."""
        return len(self.validation.valid)

    @property
    def looped_record_count(self) -> int:
        """Trace records that are replicas of validated streams."""
        return sum(stream.size for stream in self.validation.valid)


class LoopDetector:
    """Runs detect → validate → merge over a trace.

    ``tracer`` (default: the shared null tracer) receives one wall-clock
    phase span per pipeline stage — ``detect.replicas``,
    ``detect.validate``, ``detect.merge`` — tagged ``clock="wall"`` so
    they coexist in one trace file with sim-time control-plane records.
    ``profile`` (default: the shared null profile) accumulates the same
    stages as :class:`~repro.obs.perf.PipelineProfile` spans — plus the
    per-tier ``step1.kernel.<tier>`` span on the columnar path — for the
    ``/perf`` endpoints and benchmark provenance.  Neither changes
    anything about the result: they wrap the exact same calls.
    """

    def __init__(self, config: DetectorConfig | None = None,
                 tracer=NULL_TRACER, profile=NULL_PROFILE) -> None:
        self.config = config or DetectorConfig()
        self.tracer = tracer
        self.profile = profile

    def detect(self, trace: Trace) -> DetectionResult:
        """Run the full pipeline on ``trace``."""
        config = self.config
        tracer = self.tracer
        profile = self.profile
        scan_stats = ReplicaScanStats()
        with tracer.phase("detect.replicas", clock="wall") as phase, \
                profile.stage("detect.replicas",
                              records=len(trace.records)):
            candidates = detect_replicas(
                trace,
                min_ttl_delta=config.min_ttl_delta,
                max_replica_gap=config.max_replica_gap,
                eviction_interval=config.eviction_interval,
                stats=scan_stats,
            )
            phase.note(records=len(trace.records),
                       candidates=len(candidates))
        needs_index = config.check_prefix_consistency or config.check_gap_consistency
        prefix_index = (
            PrefixIndex(trace, config.prefix_length) if needs_index else None
        )
        with tracer.phase("detect.validate", clock="wall") as phase, \
                profile.stage("detect.validate"):
            validation = validate_streams(
                candidates,
                trace,
                min_stream_size=config.min_stream_size,
                prefix_length=config.prefix_length,
                check_prefix_consistency=config.check_prefix_consistency,
                prefix_index=prefix_index,
            )
            phase.note(valid=len(validation.valid))
        with tracer.phase("detect.merge", clock="wall") as phase, \
                profile.stage("detect.merge"):
            loops = merge_streams(
                validation.valid,
                trace,
                merge_gap=config.merge_gap,
                prefix_length=config.prefix_length,
                check_gap_consistency=config.check_gap_consistency,
                prefix_index=prefix_index,
                candidates=candidates,
            )
            phase.note(loops=len(loops))
        # Loop intervals live in *trace* time (simulation time for
        # simulated traces) — the lifecycle correlator joins them with
        # the control plane's sim-time events.
        for loop in loops:
            tracer.span("loop", loop.start, loop.end,
                        prefix=str(loop.prefix), streams=loop.stream_count)
        return DetectionResult(
            trace=trace,
            config=config,
            candidate_streams=candidates,
            validation=validation,
            loops=loops,
            scan_stats=scan_stats,
        )

    def detect_columnar(self, ctrace) -> DetectionResult:
        """Run the full pipeline over a columnar trace.

        Same three steps, same output as :meth:`detect` on the
        materialized equivalent of ``ctrace`` (the equivalence suite
        asserts this stream for stream), but step 1 runs the batched
        columnar kernel and the prefix index is built straight off the
        data slabs.  ``result.trace`` is the
        :class:`~repro.net.columnar.ColumnarTrace` itself, which carries
        the summary surface (record count, duration, bandwidth) the
        reports need.
        """
        config = self.config
        tracer = self.tracer
        profile = self.profile
        scan_stats = ReplicaScanStats()
        with tracer.phase("detect.replicas", clock="wall") as phase, \
                profile.stage("detect.replicas"):
            candidates = detect_replicas_with_kernel(
                ctrace,
                kernel=config.kernel,
                min_ttl_delta=config.min_ttl_delta,
                max_replica_gap=config.max_replica_gap,
                eviction_interval=config.eviction_interval,
                stats=scan_stats,
                profile=profile,
            )
            phase.note(records=scan_stats.records_scanned,
                       candidates=len(candidates))
        needs_index = (config.check_prefix_consistency
                       or config.check_gap_consistency)
        prefix_index = None
        if needs_index:
            prefix_index = PrefixIndex(prefix_length=config.prefix_length)
            for chunk in ctrace.chunks:
                prefix_index.add_chunk(chunk)
        empty = Trace()
        with tracer.phase("detect.validate", clock="wall") as phase, \
                profile.stage("detect.validate"):
            validation = validate_streams(
                candidates,
                empty,
                min_stream_size=config.min_stream_size,
                prefix_length=config.prefix_length,
                check_prefix_consistency=config.check_prefix_consistency,
                prefix_index=prefix_index,
            )
            phase.note(valid=len(validation.valid))
        with tracer.phase("detect.merge", clock="wall") as phase, \
                profile.stage("detect.merge"):
            loops = merge_streams(
                validation.valid,
                empty,
                merge_gap=config.merge_gap,
                prefix_length=config.prefix_length,
                check_gap_consistency=config.check_gap_consistency,
                prefix_index=prefix_index,
                candidates=candidates,
            )
            phase.note(loops=len(loops))
        for loop in loops:
            tracer.span("loop", loop.start, loop.end,
                        prefix=str(loop.prefix), streams=loop.stream_count)
        return DetectionResult(
            trace=ctrace,
            config=config,
            candidate_streams=candidates,
            validation=validation,
            loops=loops,
            scan_stats=scan_stats,
        )
