"""Correlating detected loops with routing data (the paper's future work).

Sec. VI: "we are extending our data collection techniques to include
complete BGP and IS-IS routing data ... [to] provide explanations of the
causes and effects of routing loops."  The simulator journals every
control-plane event (:mod:`repro.routing.journal`), so this module can do
that correlation: for each detected loop it gathers the BGP activity for
the loop's prefix and the IGP activity in the surrounding window, and
attributes the loop to an EGP trigger (a withdrawal/announcement), an IGP
trigger (a link event), both, or neither.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

from repro.core.merge import RoutingLoop
from repro.routing.journal import EventKind, RoutingEvent, RoutingJournal

#: Root-trigger event kinds per protocol family.
_EGP_TRIGGERS = (EventKind.BGP_WITHDRAW_SENT, EventKind.BGP_ADVERTISE_SENT)
_IGP_TRIGGERS = (
    EventKind.LINK_DOWN, EventKind.LINK_UP,
    EventKind.ADJACENCY_LOST, EventKind.ADJACENCY_FORMED,
)


class LoopCause(Enum):
    """Attributed root cause of a detected routing loop."""

    EGP = "egp"
    IGP = "igp"
    MIXED = "mixed"
    UNKNOWN = "unknown"


@dataclass(slots=True)
class LoopAttribution:
    """One loop's correlation with the control plane."""

    loop: RoutingLoop
    cause: LoopCause
    egp_triggers: list[RoutingEvent] = field(default_factory=list)
    igp_triggers: list[RoutingEvent] = field(default_factory=list)
    prefix_events: list[RoutingEvent] = field(default_factory=list)

    @property
    def trigger_count(self) -> int:
        return len(self.egp_triggers) + len(self.igp_triggers)


def correlate_loops(
    loops: Sequence[RoutingLoop],
    journal: RoutingJournal,
    egp_lead: float = 40.0,
    igp_lead: float = 15.0,
    lag: float = 2.0,
) -> list[LoopAttribution]:
    """Attribute each detected loop to control-plane activity.

    ``egp_lead``/``igp_lead`` are how far before the loop's first replica
    a trigger may lie (BGP convergence is slow, so its window is wider);
    ``lag`` allows triggers observed just after the first replica (clock
    ordering between the monitor and the route collector).
    """
    if egp_lead < 0 or igp_lead < 0 or lag < 0:
        raise ValueError("windows must be non-negative")
    attributions = []
    for loop in loops:
        egp_window = journal.window(loop.start - egp_lead, loop.end + lag)
        egp_triggers = [
            event for event in egp_window
            if event.kind in _EGP_TRIGGERS
            and event.prefix is not None
            and event.prefix.overlaps(loop.prefix)
        ]
        igp_window = journal.window(loop.start - igp_lead, loop.end + lag)
        igp_triggers = [event for event in igp_window
                        if event.kind in _IGP_TRIGGERS]
        prefix_events = [
            event for event in egp_window
            if event.prefix is not None
            and event.prefix.overlaps(loop.prefix)
        ]
        if egp_triggers and igp_triggers:
            cause = LoopCause.MIXED
        elif egp_triggers:
            cause = LoopCause.EGP
        elif igp_triggers:
            cause = LoopCause.IGP
        else:
            cause = LoopCause.UNKNOWN
        attributions.append(LoopAttribution(
            loop=loop,
            cause=cause,
            egp_triggers=egp_triggers,
            igp_triggers=igp_triggers,
            prefix_events=prefix_events,
        ))
    return attributions


def cause_summary(
    attributions: Sequence[LoopAttribution],
) -> dict[LoopCause, int]:
    """Loop counts per attributed cause."""
    summary: dict[LoopCause, int] = {cause: 0 for cause in LoopCause}
    for attribution in attributions:
        summary[attribution.cause] += 1
    return summary
