"""Step 2 — replica-stream validation.

Two checks (Sec. IV-A.2):

1. **Size** — streams of only two elements are discarded: the link layer
   can inject duplicate packets (token-ring drain failures, misconfigured
   SONET protection), and two observations are not enough evidence of a
   loop.
2. **Prefix consistency** — a routing loop captures *all* traffic to the
   affected destination prefix.  If any packet to the stream's /24 crosses
   the link during the stream's lifetime without itself being part of a
   replica stream, the candidate cannot be a routing loop and is dropped.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from struct import Struct

from repro.net.addr import IPv4Prefix
from repro.net.trace import Trace
from repro.core.replica import ReplicaStream

_DST_STRUCT = Struct(">I")


@dataclass(slots=True)
class ValidationResult:
    """Outcome of the validation pass."""

    valid: list[ReplicaStream] = field(default_factory=list)
    rejected_too_small: int = 0
    rejected_prefix_conflict: int = 0

    @property
    def rejected(self) -> int:
        return self.rejected_too_small + self.rejected_prefix_conflict


class PrefixIndex:
    """Timestamp index of all trace records, bucketed by destination /24.

    Supports the validation query "did any packet to prefix P cross the
    link in [t0, t1] that is not a replica-stream member?" in
    O(log n + answer) time.  Shared by validation (step 2) and merging
    (step 3), which runs the same query over gap intervals.
    """

    def __init__(self, trace: Trace | None = None,
                 prefix_length: int = 24) -> None:
        self.prefix_length = prefix_length
        self._shift = 32 - prefix_length
        # Records arrive time-ordered, so each bucket stays sorted.
        self._by_prefix: dict[int, list[tuple[float, int]]] = {}
        if trace is not None:
            for index, record in enumerate(trace.records):
                self.add_record(index, record.timestamp, record.data)

    def add_record(self, index: int, timestamp: float, data: bytes) -> None:
        """Index one record incrementally (timestamps must be fed in
        non-decreasing order).  Lets the chunked readers build the index
        without ever materializing a full :class:`Trace`."""
        if len(data) < 20:
            return
        dst = int.from_bytes(data[16:20], "big")
        self._by_prefix.setdefault(dst >> self._shift, []).append(
            (timestamp, index)
        )

    def add_chunk(self, chunk) -> None:
        """Index a :class:`~repro.net.columnar.ColumnarChunk` in one pass.

        Destination addresses are decoded straight off the data slab with
        ``unpack_from`` — no per-record slice or ``bytes`` copy.  Feeding
        order across chunks must remain time-ordered, as with
        :meth:`add_record`.
        """
        buf = chunk.data
        timestamps = chunk.timestamps
        offsets = chunk.offsets
        indices = chunk.indices
        base_index = chunk.base_index
        unpack_dst = _DST_STRUCT.unpack_from
        shift = self._shift
        by_prefix = self._by_prefix
        for i, length in enumerate(chunk.lengths):
            if length < 20:
                continue
            (dst,) = unpack_dst(buf, offsets[i] + 16)
            index = indices[i] if indices is not None else base_index + i
            bucket = by_prefix.get(dst >> shift)
            if bucket is None:
                bucket = by_prefix.setdefault(dst >> shift, [])
            bucket.append((timestamps[i], index))

    def _bucket(self, prefix: IPv4Prefix) -> list[tuple[float, int]]:
        if prefix.length != self.prefix_length:
            raise ValueError(
                f"index is /{self.prefix_length}, got /{prefix.length}"
            )
        return self._by_prefix.get(prefix.network >> (32 - prefix.length), [])

    def records_in_window(
        self, prefix: IPv4Prefix, start: float, end: float
    ) -> list[int]:
        """Indices of records to ``prefix`` with start <= t <= end."""
        bucket = self._bucket(prefix)
        lo = bisect_left(bucket, (start, -1))
        hi = bisect_right(bucket, (end, 1 << 62))
        return [index for _, index in bucket[lo:hi]]

    def has_non_member(
        self,
        prefix: IPv4Prefix,
        start: float,
        end: float,
        members: set[int],
    ) -> bool:
        """True if the window contains a record outside ``members``."""
        return any(
            index not in members
            for index in self.records_in_window(prefix, start, end)
        )


def validate_streams(
    candidates: list[ReplicaStream],
    trace: Trace,
    min_stream_size: int = 3,
    prefix_length: int = 24,
    check_prefix_consistency: bool = True,
    prefix_index: PrefixIndex | None = None,
) -> ValidationResult:
    """Apply the paper's two validation rules to candidate streams.

    The membership set used for the prefix-consistency check contains every
    replica of every *candidate* stream (including 2-element ones): the
    paper's rule is about packets that show no looping behaviour at all,
    not about streams that merely failed the size cut.
    """
    result = ValidationResult()
    if not candidates:
        return result
    if check_prefix_consistency and prefix_index is None:
        prefix_index = PrefixIndex(trace, prefix_length)

    members: set[int] = set()
    for stream in candidates:
        members.update(stream.member_indices())

    for stream in candidates:
        if stream.size < min_stream_size:
            result.rejected_too_small += 1
            continue
        if check_prefix_consistency:
            assert prefix_index is not None
            prefix = stream.dst_prefix(prefix_length)
            if prefix_index.has_non_member(
                prefix, stream.start, stream.end, members
            ):
                result.rejected_prefix_conflict += 1
                continue
        result.valid.append(stream)
    return result
