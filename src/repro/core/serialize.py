"""JSON serialization of detection results.

Lets operators pipe ``repro-loops detect --json`` into other tooling,
archive results alongside captures, and reload them for later analysis
without re-running detection.
"""

from __future__ import annotations

import json
from typing import Any

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.core.detector import DetectionResult
from repro.core.merge import RoutingLoop
from repro.core.replica import Replica, ReplicaStream

FORMAT_VERSION = 1


def stream_to_dict(stream: ReplicaStream) -> dict[str, Any]:
    """One replica stream as a JSON-ready dict."""
    return {
        "src": str(stream.src),
        "dst": str(stream.dst),
        "protocol": stream.protocol,
        "ttl_delta": stream.ttl_delta,
        "size": stream.size,
        "start": stream.start,
        "end": stream.end,
        "mean_spacing": stream.mean_spacing,
        "replicas": [
            {"index": replica.index, "timestamp": replica.timestamp,
             "ttl": replica.ttl}
            for replica in stream.replicas
        ],
    }


def loop_to_dict(loop: RoutingLoop) -> dict[str, Any]:
    """One routing loop as a JSON-ready dict."""
    return {
        "prefix": str(loop.prefix),
        "start": loop.start,
        "end": loop.end,
        "duration": loop.duration,
        "ttl_delta": loop.ttl_delta,
        "stream_count": loop.stream_count,
        "replica_count": loop.replica_count,
        "streams": [stream_to_dict(stream) for stream in loop.streams],
    }


def result_to_dict(result: DetectionResult,
                   extras: dict[str, Any] | None = None) -> dict[str, Any]:
    """A full detection result as a JSON-ready dict.

    ``extras`` merges additional top-level sections into the payload —
    the CLI attaches ``route_cache``, ``metrics``, and ``lifecycle``
    blocks this way so downstream tooling gets one self-contained
    document.  Extra keys may not collide with the core schema.
    """
    payload = _result_payload(result)
    if extras:
        for key in extras:
            if key in payload:
                raise ValueError(f"extras key {key!r} collides with the "
                                 "core result schema")
        payload.update(extras)
    return payload


def _result_payload(result: DetectionResult) -> dict[str, Any]:
    return {
        "format_version": FORMAT_VERSION,
        "trace": {
            "link": result.trace.link_name,
            "records": len(result.trace),
            "duration": result.trace.duration,
            "snaplen": result.trace.snaplen,
        },
        "config": {
            "min_ttl_delta": result.config.min_ttl_delta,
            "max_replica_gap": result.config.max_replica_gap,
            "min_stream_size": result.config.min_stream_size,
            "prefix_length": result.config.prefix_length,
            "merge_gap": result.config.merge_gap,
        },
        "summary": {
            "candidate_streams": len(result.candidate_streams),
            "validated_streams": result.stream_count,
            "rejected_too_small": result.validation.rejected_too_small,
            "rejected_prefix_conflict": (
                result.validation.rejected_prefix_conflict
            ),
            "loops": result.loop_count,
            "looped_packets": result.looped_packet_count,
            "looped_records": result.looped_record_count,
        },
        "loops": [loop_to_dict(loop) for loop in result.loops],
    }


def result_to_json(result: DetectionResult, indent: int | None = 2,
                   extras: dict[str, Any] | None = None) -> str:
    """Serialize a detection result to a JSON string."""
    return json.dumps(result_to_dict(result, extras=extras), indent=indent)


def loops_from_dict(payload: dict[str, Any]) -> list[RoutingLoop]:
    """Rebuild :class:`RoutingLoop` objects from a serialized result.

    The trace bytes are not serialized, so the rebuilt streams carry an
    empty ``key``/``first_data`` — sufficient for every duration/size/
    delta analysis, but not for re-validation against a trace.
    """
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported format version: {version!r}")
    loops = []
    for loop_dict in payload["loops"]:
        streams = []
        for stream_dict in loop_dict["streams"]:
            streams.append(ReplicaStream(
                key=b"",
                replicas=[
                    Replica(index=replica["index"],
                            timestamp=replica["timestamp"],
                            ttl=replica["ttl"])
                    for replica in stream_dict["replicas"]
                ],
                src=IPv4Address.parse(stream_dict["src"]),
                dst=IPv4Address.parse(stream_dict["dst"]),
                protocol=stream_dict["protocol"],
                first_data=b"",
            ))
        loops.append(RoutingLoop(
            prefix=IPv4Prefix.parse(loop_dict["prefix"]),
            streams=streams,
        ))
    return loops


def loops_from_json(text: str) -> list[RoutingLoop]:
    """Rebuild loops from a JSON string produced by
    :func:`result_to_json`."""
    return loops_from_dict(json.loads(text))
