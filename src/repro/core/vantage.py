"""Merging detections from multiple vantage points.

A routing loop is a cycle of links; every monitored link inside the
cycle records its own replica streams for the same event.  Analyzing
each trace separately (as the paper did) counts such an event once per
vantage.  This module de-duplicates: per-link detections are merged
into AS-wide *loop events* keyed by destination prefix and overlapping
time windows, listing the vantage points that saw each event.

This quantifies how much a single-link view undercounts — and, run on
both directions of one link, confirms that a two-router loop is seen
symmetrically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.net.addr import IPv4Prefix
from repro.net.trace import Trace
from repro.core.detector import DetectionResult, DetectorConfig, LoopDetector
from repro.core.merge import RoutingLoop


@dataclass(slots=True)
class LoopEvent:
    """One AS-wide loop event, assembled from per-vantage detections."""

    prefix: IPv4Prefix
    start: float
    end: float
    sightings: dict[str, list[RoutingLoop]] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def vantage_count(self) -> int:
        return len(self.sightings)

    @property
    def vantages(self) -> list[str]:
        return sorted(self.sightings)

    @property
    def total_replicas(self) -> int:
        return sum(loop.replica_count
                   for loops in self.sightings.values()
                   for loop in loops)


def detect_on_all(
    traces: Mapping[str, Trace],
    config: DetectorConfig | None = None,
) -> dict[str, DetectionResult]:
    """Run the detector independently on every vantage's trace."""
    detector = LoopDetector(config)
    return {vantage: detector.detect(trace)
            for vantage, trace in traces.items()}


def merge_loop_events(
    results: Mapping[str, DetectionResult],
    time_slack: float = 1.0,
) -> list[LoopEvent]:
    """Merge per-vantage loops into AS-wide events.

    Two loops belong to the same event when they affect the same
    destination prefix and their time windows overlap within
    ``time_slack`` seconds (monitors time-stamp the same cycle at
    different points of the ring, so exact overlap is not guaranteed for
    very short events).
    """
    if time_slack < 0:
        raise ValueError("time_slack must be non-negative")
    # Collect (vantage, loop) pairs grouped by prefix.
    by_prefix: dict[IPv4Prefix, list[tuple[str, RoutingLoop]]] = {}
    for vantage, result in results.items():
        for loop in result.loops:
            by_prefix.setdefault(loop.prefix, []).append((vantage, loop))

    events: list[LoopEvent] = []
    for prefix, sightings in by_prefix.items():
        sightings.sort(key=lambda item: item[1].start)
        current: LoopEvent | None = None
        for vantage, loop in sightings:
            if (current is not None
                    and loop.start <= current.end + time_slack):
                current.end = max(current.end, loop.end)
                current.start = min(current.start, loop.start)
                current.sightings.setdefault(vantage, []).append(loop)
                continue
            current = LoopEvent(prefix=prefix, start=loop.start,
                                end=loop.end,
                                sightings={vantage: [loop]})
            events.append(current)
    events.sort(key=lambda event: event.start)
    return events


@dataclass(slots=True)
class VantageSummary:
    """How much single-link analysis over/undercounts loop events."""

    per_vantage_loops: dict[str, int]
    events: int
    multi_vantage_events: int

    @property
    def naive_total(self) -> int:
        """Loops summed across vantages (double-counts shared events)."""
        return sum(self.per_vantage_loops.values())

    @property
    def overcount_factor(self) -> float:
        if self.events == 0:
            return 0.0
        return self.naive_total / self.events


def summarize_vantages(
    results: Mapping[str, DetectionResult],
    time_slack: float = 1.0,
) -> VantageSummary:
    """Event counts vs. naive per-link loop counts."""
    events = merge_loop_events(results, time_slack)
    return VantageSummary(
        per_vantage_loops={vantage: result.loop_count
                           for vantage, result in results.items()},
        events=len(events),
        multi_vantage_events=sum(
            1 for event in events if event.vantage_count > 1
        ),
    )
