"""numpy building blocks for the vectorized step-1 kernel tier.

Everything here is optional: the module imports cleanly without numpy
(``np`` is then ``None`` and ``HAVE_NUMPY`` is ``False``), and every
caller — the vectorized kernel, the columnar shard partition — falls
back to its pure-python path when numpy is absent.  Nothing outside
this module imports numpy directly, so "does the repo work without
numpy" is checkable by uninstalling it and running the tier-equivalence
suite (CI does exactly that).

Two primitives live here:

* :func:`hash_rows` — a per-row 64-bit hash of a 2-D ``uint8`` array,
  used by the vectorized kernel's duplicate filter.  Each row is padded
  to a multiple of 8 bytes, viewed as ``uint64`` words, and dotted with
  a fixed table of random odd weights (mod 2**64).  Equal rows always
  hash equal — that is the property the filter's correctness rests on;
  collisions merely cost a little pass-2 work (see
  :func:`~repro.core.replica.detect_replicas_vectorized`).
* :func:`crc32_rows` — table-driven CRC-32 over the rows, bit-identical
  to :func:`zlib.crc32` per row, vectorized across rows one byte-column
  at a time.  Used for chunk-level shard assignment, where placement
  must match the scalar ``crc32(scratch)`` loop exactly.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]

HAVE_NUMPY = np is not None

#: Seed of the hash weight table.  The hash is process-internal (it
#: never crosses a process boundary and nothing observable depends on
#: its values), but a fixed seed keeps runs reproducible under perf
#: tooling.
_WEIGHT_SEED = 0x51F15EED

#: Weights are grown in fixed blocks, each derived from its own seeded
#: generator, so extending the table for a longer record NEVER changes
#: the weights already handed out — two hashes of the same bytes must
#: agree even when one was computed before the table grew.
_WEIGHT_BLOCK = 64

_weights = np.empty(0, dtype=np.uint64) if HAVE_NUMPY else None

_crc_table = None


def hash_weights(words: int):
    """The first ``words`` hash weights (odd uint64s), growing the
    shared table block by block as needed."""
    global _weights
    while len(_weights) < words:
        block_id = len(_weights) // _WEIGHT_BLOCK
        rng = np.random.default_rng(_WEIGHT_SEED + block_id)
        block = rng.integers(0, 1 << 63, _WEIGHT_BLOCK, dtype=np.uint64)
        _weights = np.concatenate([_weights, block * np.uint64(2)
                                   + np.uint64(1)])
    return _weights[:words]


def hash_rows(rows):
    """Per-row 64-bit hashes of a C-contiguous ``(n, length)`` uint8
    array.  Equal rows hash equal; the row length participates via the
    word count, and rows of different lengths are never compared by the
    callers anyway (different lengths mean different keys)."""
    n, length = rows.shape
    padded_len = (length + 7) & ~7
    if padded_len != length:
        padded = np.zeros((n, padded_len), dtype=np.uint8)
        padded[:, :length] = rows
    else:
        padded = np.ascontiguousarray(rows)
    words = padded.view(np.uint64)
    weights = hash_weights(words.shape[1])
    # Element-wise multiply + sum keeps everything in wrapping uint64
    # arithmetic (matmul would not).
    return (words * weights).sum(axis=1, dtype=np.uint64)


def hash_row_bytes(key) -> int:
    """:func:`hash_rows` of one record's bytes (irregular-chunk path)."""
    row = np.frombuffer(key, dtype=np.uint8).reshape(1, -1)
    return int(hash_rows(row)[0])


#: IPv4 header offsets mirrored from :mod:`repro.core.replica` — the
#: mutable fields the masked key zeroes (TTL, header checksum).
_TTL_OFFSET = 8
_CHECKSUM_OFFSET = 10


def masked_rows(data, first: int, n: int, stride: int, length: int):
    """View a stride-regular slab as records and mask the mutable fields.

    Returns ``(rows, masked, ttls)``: ``rows`` is a zero-copy strided
    ``(n, length)`` uint8 view of the slab starting at byte ``first``;
    ``masked`` is a contiguous copy with the TTL and checksum bytes
    zeroed, so ``masked[i].tobytes()`` equals
    :func:`~repro.core.replica.mask_mutable_fields` of record ``i``; and
    ``ttls`` is the original TTL column.  This is the shared pass-1 slab
    preparation of the vectorized offline kernel and the batched
    streaming tier.
    """
    span = (n - 1) * stride + length
    region = np.frombuffer(data, dtype=np.uint8, offset=first, count=span)
    rows = np.lib.stride_tricks.as_strided(
        region, shape=(n, length), strides=(stride, 1)
    )
    # .copy() (not ascontiguousarray) — the region buffer is read-only
    # and an already-contiguous view would be returned as-is.
    masked = rows.copy()
    ttls = masked[:, _TTL_OFFSET].copy()
    masked[:, _TTL_OFFSET] = 0
    masked[:, _CHECKSUM_OFFSET] = 0
    masked[:, _CHECKSUM_OFFSET + 1] = 0
    return rows, masked, ttls


def dst_prefixes(masked, shift: int):
    """Per-row destination /N prefix of a ``(n, length)`` uint8 record
    matrix: the big-endian uint32 at bytes 16..20 shifted right by
    ``shift`` — one value per record, matching the scalar
    ``int.from_bytes(data[16:20], "big") >> shift``."""
    dst = np.ascontiguousarray(masked[:, 16:20]).view(">u4").ravel()
    return (dst.astype(np.uint32) >> np.uint32(shift)).astype(np.int64)


def crc32_table():
    """The reflected CRC-32 (poly 0xEDB88320) byte table as uint32."""
    global _crc_table
    if _crc_table is None:
        table = np.empty(256, dtype=np.uint32)
        for i in range(256):
            crc = i
            for _ in range(8):
                crc = (crc >> 1) ^ (0xEDB88320 if crc & 1 else 0)
            table[i] = crc
        _crc_table = table
    return _crc_table


def crc32_rows(rows):
    """CRC-32 of each row of a ``(n, length)`` uint8 array.

    Bit-identical to ``zlib.crc32(row)`` (same polynomial, init and
    final xor), computed for all rows at once, one byte-column per
    step — n-wide vector operations instead of n Python-level calls.
    """
    table = crc32_table()
    n, length = rows.shape
    crc = np.full(n, 0xFFFFFFFF, dtype=np.uint32)
    mask = np.uint32(0xFF)
    shift = np.uint32(8)
    for column in range(length):
        crc = (crc >> shift) ^ table[(crc ^ rows[:, column]) & mask]
    return crc ^ np.uint32(0xFFFFFFFF)
