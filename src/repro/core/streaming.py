"""Online (streaming) loop detection.

The paper ran its algorithm offline over recorded traces.  An operator
monitoring a live link wants the same result incrementally: feed records
as they are captured, get each routing loop reported shortly after it
ends, with memory bounded by the loop window rather than the trace.

:class:`StreamingLoopDetector` implements the paper's three steps as an
event-driven pipeline:

* replicas chain exactly as offline (masked-byte key, TTL delta >= 2,
  bounded chaining gap), with deadline heaps evicting stale singletons
  and completing quiescent streams;
* a completed stream validates against a sliding per-/24 history of
  recent records (the same all-packets-loop rule);
* validated streams merge into open loops, which are emitted once no
  further stream can join them (the merge gap has passed with the
  prefix quiet).

Given the same configuration, its output matches the offline
:class:`~repro.core.detector.LoopDetector` on the same records — a
property the test suite checks on both synthetic and simulated traces.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.net.addr import IPv4Address
from repro.obs.tracing import NULL_TRACER
from repro.core.detector import DetectorConfig
from repro.core.merge import RoutingLoop
from repro.core.replica import (
    Replica,
    ReplicaStream,
    mask_mutable_fields,
)

_MIN_CAPTURE = 20

LoopCallback = Callable[[RoutingLoop], None]


@dataclass(slots=True)
class _OpenStream:
    key: bytes
    first_data: bytes
    replicas: list[Replica]

    @property
    def last(self) -> Replica:
        return self.replicas[-1]


@dataclass(slots=True)
class _OpenLoop:
    prefix_net: int
    streams: list[ReplicaStream]
    end: float


@dataclass(slots=True)
class StreamingStats:
    """Counters kept by the streaming detector."""

    records: int = 0
    skipped_short: int = 0
    streams_completed: int = 0
    streams_rejected_small: int = 0
    streams_rejected_conflict: int = 0
    loops_emitted: int = 0


class StreamingLoopDetector:
    """Incremental three-step loop detection over a live record feed."""

    def __init__(
        self,
        config: DetectorConfig | None = None,
        on_loop: LoopCallback | None = None,
        tracer=NULL_TRACER,
    ) -> None:
        self.config = config or DetectorConfig()
        self.on_loop = on_loop
        self.tracer = tracer
        self.stats = StreamingStats()

        self._index = 0
        self._now = float("-inf")
        shift = 32 - self.config.prefix_length
        self._shift = shift

        # Step 1 state.
        self._singletons: dict[bytes, tuple[int, float, int, bytes]] = {}
        self._singleton_prefixes: dict[int, set[bytes]] = {}
        self._open_streams: dict[bytes, list[_OpenStream]] = {}
        self._stream_deadlines: list[tuple[float, int, _OpenStream]] = []
        self._singleton_deadlines: list[tuple[float, bytes, int]] = []
        self._deadline_seq = 0

        # Step 2 state: per-/24 sliding history and member indices.
        self._history: dict[int, list[tuple[float, int]]] = {}
        self._members: dict[int, set[int]] = {}
        self._open_stream_count: dict[int, int] = {}

        # Step 3 state.
        self._open_loops: dict[int, _OpenLoop] = {}
        self._loop_deadlines: list[tuple[float, int, int]] = []

        self._emitted: list[RoutingLoop] = []

    # -- public API -----------------------------------------------------------

    def process(self, timestamp: float, data: bytes) -> list[RoutingLoop]:
        """Feed one captured record; returns loops that just closed."""
        if timestamp < self._now:
            raise ValueError(
                f"records must be time-ordered: {timestamp} < {self._now}"
            )
        self._now = timestamp
        self._emitted = []
        self.stats.records += 1

        self._expire(timestamp)
        if self.stats.records % 20_000 == 0:
            # Global history pruning so quiet prefixes cannot accumulate
            # unbounded state on long-running feeds.
            for prefix_net in list(self._history):
                if prefix_net not in self._open_loops:
                    self._prune_history(prefix_net, timestamp)

        if len(data) < _MIN_CAPTURE:
            self.stats.skipped_short += 1
            return self._emitted

        index = self._index
        self._index += 1
        prefix_net = int.from_bytes(data[16:20], "big") >> self._shift
        self._history.setdefault(prefix_net, []).append((timestamp, index))

        self._chain(index, timestamp, data)
        return self._emitted

    def process_trace(self, trace) -> list[RoutingLoop]:
        """Feed a whole :class:`~repro.net.trace.Trace`; returns all loops
        (including those closed by the final flush)."""
        loops: list[RoutingLoop] = []
        with self.tracer.phase("streaming.process_trace",
                               clock="wall") as phase:
            for record in trace:
                loops.extend(self.process(record.timestamp, record.data))
            loops.extend(self.flush())
            phase.note(records=self.stats.records, loops=len(loops))
        return loops

    def process_chunk(self, chunk) -> list[RoutingLoop]:
        """Feed one :class:`~repro.net.columnar.ColumnarChunk`.

        Records are fed as zero-copy ``memoryview`` slices of the chunk's
        data slab; the chaining state stores the views and materializes
        ``bytes`` only when a stream actually forms, so the emitted loops
        are byte-identical to a record-by-record :meth:`process` feed.
        """
        loops: list[RoutingLoop] = []
        extend = loops.extend
        process = self.process
        view = memoryview(chunk.data)
        offsets = chunk.offsets
        timestamps = chunk.timestamps
        for i, length in enumerate(chunk.lengths):
            offset = offsets[i]
            extend(process(timestamps[i], view[offset:offset + length]))
        return loops

    def process_trace_columnar(self, ctrace) -> list[RoutingLoop]:
        """Feed a whole :class:`~repro.net.columnar.ColumnarTrace`;
        returns all loops (including those closed by the final flush)."""
        loops: list[RoutingLoop] = []
        with self.tracer.phase("streaming.process_trace",
                               clock="wall") as phase:
            for chunk in ctrace.chunks:
                loops.extend(self.process_chunk(chunk))
            loops.extend(self.flush())
            phase.note(records=self.stats.records, loops=len(loops))
        return loops

    def flush(self) -> list[RoutingLoop]:
        """End of input: complete every open stream and close every loop."""
        self._emitted = []
        infinity = float("inf")
        self._expire(infinity)
        return self._emitted

    def state_snapshot(self) -> dict:
        """JSON-ready view of the detector's live state for the
        monitoring ``/state`` endpoint: in-flight candidate streams,
        open (unemitted) loops, and the running stats.

        This reads sizes and summaries only — it never mutates detector
        state, so serving it from another thread cannot change what the
        detector emits.
        """
        open_streams = [
            {
                "replicas": len(stream.replicas),
                "first_ttl": stream.replicas[0].ttl,
                "last_ttl": stream.last.ttl,
                "start": stream.replicas[0].timestamp,
                "last_seen": stream.last.timestamp,
            }
            for streams in self._open_streams.values()
            for stream in streams
        ]
        open_loops = [
            {
                "prefix_net": loop.prefix_net,
                "streams": len(loop.streams),
                "start": min(s.start for s in loop.streams),
                "end": loop.end,
            }
            for loop in self._open_loops.values()
        ]
        stats = self.stats
        return {
            "now": None if self._now == float("-inf") else self._now,
            "singletons": len(self._singletons),
            "open_streams": open_streams,
            "open_loops": open_loops,
            "tracked_prefixes": len(self._history),
            "stats": {
                "records": stats.records,
                "skipped_short": stats.skipped_short,
                "streams_completed": stats.streams_completed,
                "streams_rejected_small": stats.streams_rejected_small,
                "streams_rejected_conflict": stats.streams_rejected_conflict,
                "loops_emitted": stats.loops_emitted,
            },
        }

    def register_metrics(self, registry) -> None:
        """Publish :class:`StreamingStats` via a weakly-held collector;
        the per-record path keeps its plain-int counters."""
        registry.register_collector(self._publish_metrics)

    def _publish_metrics(self, registry) -> None:
        stats = self.stats
        registry.counter(
            "streaming_records_total", "Records fed to the detector"
        ).set(stats.records)
        registry.counter(
            "streaming_records_skipped_short_total",
            "Records below the minimum capture length",
        ).set(stats.skipped_short)
        registry.counter(
            "streaming_streams_completed_total",
            "Candidate replica streams that went quiescent",
        ).set(stats.streams_completed)
        registry.counter(
            "streaming_streams_rejected_small_total",
            "Streams rejected for too few replicas",
        ).set(stats.streams_rejected_small)
        registry.counter(
            "streaming_streams_rejected_conflict_total",
            "Streams rejected by prefix-consistency validation",
        ).set(stats.streams_rejected_conflict)
        registry.counter(
            "streaming_loops_emitted_total", "Routing loops emitted"
        ).set(stats.loops_emitted)

    # -- step 1: chaining -------------------------------------------------------

    def _chain(self, index: int, timestamp: float, data: bytes) -> None:
        config = self.config
        key = mask_mutable_fields(data)
        ttl = data[8]

        streams = self._open_streams.get(key)
        if streams is not None:
            for stream in reversed(streams):
                last = stream.last
                if (last.ttl - ttl >= config.min_ttl_delta
                        and timestamp - last.timestamp
                        <= config.max_replica_gap):
                    stream.replicas.append(
                        Replica(index=index, timestamp=timestamp, ttl=ttl)
                    )
                    self._add_member(data, index)
                    self._push_stream_deadline(stream)
                    return

        previous = self._singletons.get(key)
        if previous is not None:
            prev_index, prev_time, prev_ttl, prev_data = previous
            if (prev_ttl - ttl >= config.min_ttl_delta
                    and timestamp - prev_time <= config.max_replica_gap):
                if type(prev_data) is not bytes:
                    # Columnar feeds store zero-copy views; materialize
                    # only now that a stream actually formed.
                    prev_data = bytes(prev_data)
                stream = _OpenStream(
                    key=key,
                    first_data=prev_data,
                    replicas=[
                        Replica(index=prev_index, timestamp=prev_time,
                                ttl=prev_ttl),
                        Replica(index=index, timestamp=timestamp, ttl=ttl),
                    ],
                )
                self._open_streams.setdefault(key, []).append(stream)
                del self._singletons[key]
                prefix_net = self._prefix_net(prev_data)
                self._drop_singleton_key(prefix_net, key)
                self._open_stream_count[prefix_net] = (
                    self._open_stream_count.get(prefix_net, 0) + 1
                )
                self._add_member(prev_data, prev_index)
                self._add_member(data, index)
                self._push_stream_deadline(stream)
                return

        self._singletons[key] = (index, timestamp, ttl, data)
        self._singleton_prefixes.setdefault(
            self._prefix_net(data), set()
        ).add(key)
        self._deadline_seq += 1
        heapq.heappush(
            self._singleton_deadlines,
            (timestamp + config.max_replica_gap, key, index),
        )

    def _prefix_net(self, data: bytes) -> int:
        return int.from_bytes(data[16:20], "big") >> self._shift

    def _add_member(self, data: bytes, index: int) -> None:
        self._members.setdefault(self._prefix_net(data), set()).add(index)

    def _push_stream_deadline(self, stream: _OpenStream) -> None:
        self._deadline_seq += 1
        heapq.heappush(
            self._stream_deadlines,
            (stream.last.timestamp + self.config.max_replica_gap,
             self._deadline_seq, stream),
        )

    # -- deadline processing ------------------------------------------------------

    def _expire(self, now: float) -> None:
        # Evict stale singletons.
        while (self._singleton_deadlines
               and self._singleton_deadlines[0][0] <= now):
            _, key, index = heapq.heappop(self._singleton_deadlines)
            current = self._singletons.get(key)
            if current is not None and current[0] == index:
                del self._singletons[key]
                self._drop_singleton_key(self._prefix_net(current[3]), key)

        # Complete quiescent streams.
        while self._stream_deadlines and self._stream_deadlines[0][0] <= now:
            deadline, _, stream = heapq.heappop(self._stream_deadlines)
            true_deadline = (stream.last.timestamp
                             + self.config.max_replica_gap)
            if true_deadline > now:
                continue  # stream was extended; a fresher deadline exists
            if deadline < true_deadline:
                continue  # superseded entry
            streams = self._open_streams.get(stream.key)
            if streams is None or stream not in streams:
                continue
            streams.remove(stream)
            if not streams:
                del self._open_streams[stream.key]
            self._complete_stream(stream)

        # Close loops whose merge window has passed.
        while self._loop_deadlines and self._loop_deadlines[0][0] <= now:
            _, _, prefix_net = heapq.heappop(self._loop_deadlines)
            loop = self._open_loops.get(prefix_net)
            if loop is None:
                continue
            deadline = loop.end + self.config.merge_gap
            if deadline > now:
                continue  # extended since this entry was pushed
            if (self._open_stream_count.get(prefix_net, 0) > 0
                    or self._singleton_may_merge(prefix_net, loop)):
                # A candidate stream for this prefix is still chaining
                # (or a singleton inside the merge window could still
                # start one); re-check once it resolves.
                self._push_loop_deadline(prefix_net, now)
                continue
            del self._open_loops[prefix_net]
            self._emit(loop)
            self._prune_history(prefix_net, now)

    def _drop_singleton_key(self, prefix_net: int, key: bytes) -> None:
        keys = self._singleton_prefixes.get(prefix_net)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._singleton_prefixes[prefix_net]

    def _singleton_may_merge(self, prefix_net: int, loop: _OpenLoop) -> bool:
        """True while a live singleton on this prefix sits inside the
        loop's merge window: if it chains, the resulting stream starts at
        the singleton's timestamp and would merge into the loop, so the
        loop cannot close yet.  (Singletons past the window can only seed
        streams that start a new loop — those never block emission.)"""
        horizon = loop.end + self.config.merge_gap
        return any(self._singletons[key][1] < horizon
                   for key in self._singleton_prefixes.get(prefix_net, ()))

    def _push_loop_deadline(self, prefix_net: int, now: float) -> None:
        loop = self._open_loops.get(prefix_net)
        if loop is None:
            return
        deadline = max(loop.end + self.config.merge_gap,
                       now + self.config.max_replica_gap)
        if deadline == float("inf"):
            deadline = now  # flush: fire immediately on the next sweep
        self._deadline_seq += 1
        heapq.heappush(self._loop_deadlines,
                       (deadline, self._deadline_seq, prefix_net))

    # -- steps 2 and 3 ---------------------------------------------------------------

    def _complete_stream(self, open_stream: _OpenStream) -> None:
        self.stats.streams_completed += 1
        data = open_stream.first_data
        prefix_net = self._prefix_net(data)
        self._open_stream_count[prefix_net] = max(
            0, self._open_stream_count.get(prefix_net, 0) - 1
        )
        config = self.config
        if len(open_stream.replicas) < config.min_stream_size:
            self.stats.streams_rejected_small += 1
            return
        stream = ReplicaStream(
            key=open_stream.key,
            replicas=open_stream.replicas,
            src=IPv4Address.from_bytes(data[12:16]),
            dst=IPv4Address.from_bytes(data[16:20]),
            protocol=data[9],
            first_data=data,
        )
        if config.check_prefix_consistency and self._window_has_non_member(
            prefix_net, stream.start, stream.end
        ):
            self.stats.streams_rejected_conflict += 1
            return
        self._merge_stream(prefix_net, stream)

    def _window_has_non_member(self, prefix_net: int, start: float,
                               end: float) -> bool:
        members = self._members.get(prefix_net, ())
        for timestamp, index in self._history.get(prefix_net, ()):
            if start <= timestamp <= end and index not in members:
                return True
        return False

    def _merge_stream(self, prefix_net: int, stream: ReplicaStream) -> None:
        loop = self._open_loops.get(prefix_net)
        if loop is not None:
            gap_start, gap_end = loop.end, stream.start
            mergeable = (
                gap_end <= gap_start
                or (gap_end - gap_start < self.config.merge_gap
                    and not (self.config.check_gap_consistency
                             and self._window_has_non_member(
                                 prefix_net, gap_start, gap_end)))
            )
            if mergeable:
                loop.streams.append(stream)
                loop.end = max(loop.end, stream.end)
                self._push_loop_deadline(prefix_net, stream.end)
                return
            del self._open_loops[prefix_net]
            self._emit(loop)
        self._open_loops[prefix_net] = _OpenLoop(
            prefix_net=prefix_net, streams=[stream], end=stream.end
        )
        self._push_loop_deadline(prefix_net, stream.end)

    def _emit(self, loop: _OpenLoop) -> None:
        streams = sorted(loop.streams, key=lambda stream: stream.start)
        routing_loop = RoutingLoop(
            prefix=streams[0].dst_prefix(self.config.prefix_length),
            streams=streams,
        )
        self.stats.loops_emitted += 1
        # Loop intervals are in record-timestamp time, same domain as the
        # control-plane events of a simulated trace.
        self.tracer.span("loop", routing_loop.start, routing_loop.end,
                         prefix=str(routing_loop.prefix),
                         streams=routing_loop.stream_count)
        self._emitted.append(routing_loop)
        if self.on_loop is not None:
            self.on_loop(routing_loop)

    def _prune_history(self, prefix_net: int, now: float) -> None:
        """Drop per-prefix history/members no loop can reference anymore."""
        if now == float("inf"):
            self._history.pop(prefix_net, None)
            self._members.pop(prefix_net, None)
            return
        horizon = now - (self.config.merge_gap
                         + self.config.max_replica_gap)
        history = self._history.get(prefix_net)
        if not history:
            return
        kept = [(t, i) for t, i in history if t >= horizon]
        dropped = {i for t, i in history if t < horizon}
        if kept:
            self._history[prefix_net] = kept
        else:
            del self._history[prefix_net]
        members = self._members.get(prefix_net)
        if members:
            members -= dropped
            if not members:
                self._members.pop(prefix_net, None)
