"""Online (streaming) loop detection.

The paper ran its algorithm offline over recorded traces.  An operator
monitoring a live link wants the same result incrementally: feed records
as they are captured, get each routing loop reported shortly after it
ends, with memory bounded by the loop window rather than the trace.

:class:`StreamingLoopDetector` implements the paper's three steps as an
event-driven pipeline:

* replicas chain exactly as offline (masked-byte key, TTL delta >= 2,
  bounded chaining gap), with deadline heaps evicting stale singletons
  and completing quiescent streams;
* a completed stream validates against a sliding per-/24 history of
  recent records (the same all-packets-loop rule);
* validated streams merge into open loops, which are emitted once no
  further stream can join them (the merge gap has passed with the
  prefix quiet).

Given the same configuration, its output matches the offline
:class:`~repro.core.detector.LoopDetector` on the same records — a
property the test suite checks on both synthetic and simulated traces.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.net.addr import IPv4Address
from repro.obs.tracing import NULL_TRACER
from repro.core import vectorize
from repro.core.detector import DetectorConfig
from repro.core.merge import RoutingLoop
from repro.core.replica import (
    _LENGTH_DTYPES,
    Replica,
    ReplicaStream,
    mask_mutable_fields,
)

_MIN_CAPTURE = 20

LoopCallback = Callable[[RoutingLoop], None]


@dataclass(slots=True)
class _OpenStream:
    key: bytes
    first_data: bytes
    replicas: list[Replica]

    @property
    def last(self) -> Replica:
        return self.replicas[-1]


@dataclass(slots=True)
class _OpenLoop:
    prefix_net: int
    streams: list[ReplicaStream]
    end: float


@dataclass(slots=True)
class _BulkBatch:
    """Columnar sidecar of singletons inserted by the batched tier.

    A bulk record's singleton never interacts with anything unless a
    later record carries the same masked key — and equal keys always
    hash equal — so the batched tier parks whole chunks of singletons
    here as parallel arrays instead of paying the per-record dict, set,
    and heap maintenance.  Entries are *promoted* into the real
    ``_singletons`` state the moment a later chunk's hash matches (or a
    per-record feed resumes); eviction is a vectorized comparison
    against the ascending ``dl`` column instead of a heap pop.  ``pf``
    doubles as the tombstone column: ``-1`` marks an entry that was
    promoted and must not be counted or promoted again.

    All per-record columns cover the WHOLE source chunk (indexed by
    chunk position); ``pf`` is ``-1`` at non-bulk (replayed) positions
    too, so only bulk entries ever read as live.  ``hsorted``/``hpos``
    cover just the bulk entries: the batch's row hashes in sorted order
    and the chunk position behind each sorted slot, for O(log n)
    cross-chunk membership probes with no per-record index to maintain.
    """

    keys: bytes        # packed masked rows, ``length`` bytes per record
    ts: object         # float64 record timestamps, ascending
    dl: object         # float64 eviction deadlines (ts + gap), ascending
    ttls: object       # uint8 original TTL column
    pf: object         # int64 dst prefixes; -1 = replayed or tombstoned
    hsorted: object    # uint64 bulk-entry row hashes, sorted
    hpos: object       # chunk position of each ``hsorted`` slot
    dl_last: float     # final deadline (batch is all-dead past this)
    data: object       # the chunk's data slab (kept alive for promotion)
    first: int         # slab offset of chunk record 0
    stride: int
    length: int
    index0: int        # global index of chunk record 0


@dataclass(slots=True)
class StreamingStats:
    """Counters kept by the streaming detector."""

    records: int = 0
    skipped_short: int = 0
    streams_completed: int = 0
    streams_rejected_small: int = 0
    streams_rejected_conflict: int = 0
    loops_emitted: int = 0


class StreamingLoopDetector:
    """Incremental three-step loop detection over a live record feed."""

    def __init__(
        self,
        config: DetectorConfig | None = None,
        on_loop: LoopCallback | None = None,
        tracer=NULL_TRACER,
    ) -> None:
        self.config = config or DetectorConfig()
        self.on_loop = on_loop
        self.tracer = tracer
        self.stats = StreamingStats()

        self._index = 0
        self._now = float("-inf")
        shift = 32 - self.config.prefix_length
        self._shift = shift

        # Step 1 state.
        self._singletons: dict[bytes, tuple[int, float, int, bytes]] = {}
        self._singleton_prefixes: dict[int, set[bytes]] = {}
        self._open_streams: dict[bytes, list[_OpenStream]] = {}
        self._stream_deadlines: list[tuple[float, int, _OpenStream]] = []
        self._singleton_deadlines: list[tuple[float, bytes, int]] = []
        self._deadline_seq = 0

        # Step 2 state: per-/24 sliding history and member indices.
        self._history: dict[int, list[tuple[float, int]]] = {}
        self._members: dict[int, set[int]] = {}
        self._open_stream_count: dict[int, int] = {}

        # Step 3 state.
        self._open_loops: dict[int, _OpenLoop] = {}
        self._loop_deadlines: list[tuple[float, int, int]] = []

        # Batched-tier sidecar: bulk singletons parked in columnar
        # batches, probed by sorted row hash for cross-chunk matching.
        self._bulk_batches: list[_BulkBatch] = []
        # In-flight chunk columns for mid-chunk merge-window scans:
        # (ts, deadlines, prefixes, bulk mask), valid below _chunk_scan_upto.
        self._chunk_scan: tuple | None = None
        self._chunk_scan_upto = 0

        self._emitted: list[RoutingLoop] = []

    # -- public API -----------------------------------------------------------

    def process(self, timestamp: float, data: bytes) -> list[RoutingLoop]:
        """Feed one captured record; returns loops that just closed."""
        if timestamp < self._now:
            raise ValueError(
                f"records must be time-ordered: {timestamp} < {self._now}"
            )
        if self._bulk_batches:
            # A per-record feed probes ``_singletons`` directly; fold the
            # batched tier's sidecar back into the exact state first.
            self._materialize_bulk()
        self._now = timestamp
        self._emitted = []
        self.stats.records += 1

        self._expire(timestamp)
        if self.stats.records % 20_000 == 0:
            # Global history pruning so quiet prefixes cannot accumulate
            # unbounded state on long-running feeds.
            for prefix_net in list(self._history):
                if prefix_net not in self._open_loops:
                    self._prune_history(prefix_net, timestamp)

        if len(data) < _MIN_CAPTURE:
            self.stats.skipped_short += 1
            return self._emitted

        index = self._index
        self._index += 1
        prefix_net = int.from_bytes(data[16:20], "big") >> self._shift
        self._history.setdefault(prefix_net, []).append((timestamp, index))

        self._chain(index, timestamp, data)
        return self._emitted

    def process_trace(self, trace) -> list[RoutingLoop]:
        """Feed a whole :class:`~repro.net.trace.Trace`; returns all loops
        (including those closed by the final flush)."""
        loops: list[RoutingLoop] = []
        with self.tracer.phase("streaming.process_trace",
                               clock="wall") as phase:
            for record in trace:
                loops.extend(self.process(record.timestamp, record.data))
            loops.extend(self.flush())
            phase.note(records=self.stats.records, loops=len(loops))
        return loops

    def process_chunk(self, chunk) -> list[RoutingLoop]:
        """Feed one :class:`~repro.net.columnar.ColumnarChunk`.

        Stride-regular chunks take the batched fast tier
        (:meth:`_process_chunk_batched`): one vectorized pre-pass masks
        the whole slab, hashes every record, and picks out the few
        records that could interact with detector state; everything else
        is bulk-inserted.  The result is byte-identical to a
        record-by-record :meth:`process` feed — same loops, stats,
        eviction cadence, and state — which the equivalence and property
        suites assert.  Irregular chunks (or a numpy-less interpreter)
        fall back to the per-record path: records are fed as zero-copy
        ``memoryview`` slices of the chunk's data slab, and the chaining
        state materializes ``bytes`` only when a stream actually forms.
        """
        if len(chunk) and vectorize.HAVE_NUMPY and chunk.stride is not None:
            loops = self._process_chunk_batched(chunk)
            if loops is not None:
                return loops
        loops = []
        extend = loops.extend
        process = self.process
        view = memoryview(chunk.data)
        offsets = chunk.offsets
        timestamps = chunk.timestamps
        for i, length in enumerate(chunk.lengths):
            offset = offsets[i]
            extend(process(timestamps[i], view[offset:offset + length]))
        return loops

    def _process_chunk_batched(self, chunk) -> list[RoutingLoop] | None:
        """The chunk-level fast tier; ``None`` means "take the fallback".

        The per-record machine does four things per record: validate
        time order, expire due deadlines, append to the /24 history, and
        chain against key-level state.  For a stride-regular chunk the
        first three vectorize, and chaining only matters for records
        that can actually touch state:

        * records whose masked hash repeats within the chunk (the PR 7
          pass-1 filter; equal keys always hash equal, so every
          potential in-chunk pair survives),
        * records whose /24 prefix has an open stream or an open
          (unemitted) loop — key equality implies prefix equality (the
          dst bytes survive masking), so any record that could chain
          against pre-chunk stream state is caught by its prefix.
          Prefixes with only *history* need no replay: history is
          appended in bulk, and plain-history records can neither chain
          nor block a loop — or
        * records whose masked hash or key matches a pending singleton
          (the sidecar hash index or the real ``_singletons`` dict).

        Those "survivors" replay through the exact per-record code.  The
        rest — in steady traffic, nearly everything — never touch the
        per-record singleton machinery at all: their history updates in
        bulk stretches bounded by the next due stream/loop deadline,
        replay survivor, or 20k-record pruning tick, and their
        singletons are parked as one columnar :class:`_BulkBatch`.
        Sidecar entries are *promoted* into the exact state the moment a
        later chunk's hash matches (equal keys always hash equal, so no
        interaction can be missed), evicted arithmetically against the
        ascending deadline column, and consulted by
        ``_singleton_may_merge``/``state_snapshot`` with ``now``-aware
        scans — so loops, stats, eviction cadence, and snapshots stay
        byte-identical to the reference.
        """
        np = vectorize.np
        n = len(chunk)
        if n < 32:
            # The vectorized pre-pass costs more than it saves on tiny
            # chunks; the per-record fallback folds the sidecar back
            # into exact state and stays correct.
            return None
        lengths = chunk.lengths
        length = lengths[0]
        stride = chunk.stride
        if length < _MIN_CAPTURE or stride < length:
            return None
        lengths_np = np.frombuffer(
            lengths, dtype=_LENGTH_DTYPES[lengths.itemsize]
        )
        if not bool((lengths_np == length).all()):
            return None
        ts_np = np.frombuffer(chunk.timestamps, dtype=np.float64, count=n)
        if ts_np[0] < self._now:
            return None  # fallback raises at the offending record
        if n > 1 and bool((np.diff(ts_np) < 0).any()):
            return None

        config = self.config
        gap = config.max_replica_gap

        rows, masked, ttls = vectorize.masked_rows(
            chunk.data, chunk.offsets[0], n, stride, length
        )
        hashes = vectorize.hash_rows(masked)
        prefixes = vectorize.dst_prefixes(masked, self._shift)
        dl_np = ts_np + gap

        _, inverse, counts = np.unique(
            hashes, return_inverse=True, return_counts=True
        )
        replay_np = counts[inverse] > 1
        # Prefix-level gating is reserved for open streams and open
        # loops; pending singletons gate by KEY/hash below — chaining
        # probes singleton state by masked key, and in steady traffic
        # nearly every prefix holds *some* singleton, so gating
        # singletons by prefix would replay everything and erase the
        # speedup.
        active = {prefix_net
                  for prefix_net, count in self._open_stream_count.items()
                  if count > 0}
        active.update(self._open_loops)
        if active:
            replay_np |= np.isin(
                prefixes, np.fromiter(active, dtype=np.int64, count=len(active))
            )

        if len(self._bulk_batches) >= 64:
            # Safety valve for feeds whose chunks are much shorter than
            # the chaining gap (hundreds of live batches would make the
            # per-chunk hash probes super-linear): fold the sidecar back
            # into exact state and start fresh.  Promotion preserves
            # byte-identical behavior; only the speedup degrades.
            self._materialize_bulk()
        if self._bulk_batches:
            # Records matching a sidecar singleton's hash replay through
            # the exact machine, and every matching sidecar entry is
            # promoted into the real state first so the probes see it.
            # A hash collision just promotes and replays spuriously —
            # both harmless.  Dead (evicted) entries stay parked.
            now = self._now
            minimum = np.minimum
            for batch in self._bulk_batches:
                if batch.dl_last <= now:
                    continue  # all evicted; retired by the end-of-chunk GC
                hsorted = batch.hsorted
                slots = np.searchsorted(hsorted, hashes)
                hits = hsorted[minimum(slots, len(hsorted) - 1)] == hashes
                if bool(hits.any()):
                    replay_np |= hits
                    for slot in np.unique(slots[hits]).tolist():
                        self._maybe_promote(batch, int(batch.hpos[slot]),
                                            now)

        # Per-record python values, materialized once at C speed.
        ts_list = ts_np.tolist()
        ttl_list = ttls.tolist()
        pf_list = prefixes.tolist()
        masked_bytes = masked.tobytes()
        if self._singletons:
            # A record can also interact with a REAL-state singleton of
            # the same masked key (replay-inserted or just promoted).
            # Probing at chunk start over-approximates — a singleton
            # evicted or consumed mid-chunk just means a harmless extra
            # replay through the exact machine.
            replay_np |= np.fromiter(
                map(self._singletons.__contains__,
                    (masked_bytes[i * length:(i + 1) * length]
                     for i in range(n))),
                dtype=bool, count=n,
            )
        replay_list = replay_np.tolist()
        bulk_mask = ~replay_np
        view = memoryview(chunk.data)
        first = chunk.offsets[0]
        index0 = self._index
        self._index = index0 + n
        hist_pairs = list(zip(ts_list, range(index0, index0 + n)))

        replay_positions = replay_np.nonzero()[0].tolist()
        replay_positions.append(n)
        rpi = 0
        records0 = self.stats.records
        next_prune = (-records0 - 1) % 20_000

        emitted: list[RoutingLoop] = []
        self._emitted = emitted
        stats = self.stats
        history = self._history
        stream_deadlines = self._stream_deadlines
        loop_deadlines = self._loop_deadlines
        searchsorted = np.searchsorted
        # Bulk singletons inserted so far this chunk (positions below
        # _chunk_scan_upto) are visible to mid-chunk merge-window scans
        # through these columns before the batch object exists.
        self._chunk_scan = (ts_np, dl_np, prefixes, bulk_mask)
        self._chunk_scan_upto = 0

        pos = 0
        while pos < n:
            # A bulk stretch runs until the next stream/loop deadline,
            # replay survivor, or pruning tick.  Singleton evictions
            # never break stretches: real-heap entries are drained
            # lazily at the next event (and at chunk end), and sidecar
            # entries are evicted arithmetically — indistinguishable
            # from the reference, because a pending-eviction key can
            # only be probed or re-inserted by a replayed record, and
            # ``_singleton_may_merge`` only runs inside loop-close
            # events after the drain.
            stop = n
            bound = None
            if stream_deadlines:
                bound = stream_deadlines[0][0]
            if loop_deadlines and (bound is None
                                   or loop_deadlines[0][0] < bound):
                bound = loop_deadlines[0][0]
            if bound is not None:
                stop = int(searchsorted(ts_np, bound, side="left"))
                if stop < pos:
                    stop = pos
            if next_prune < stop:
                stop = next_prune
            if replay_positions[rpi] < stop:
                stop = replay_positions[rpi]

            if stop > pos:
                # Bulk records: counters and history update here; the
                # singleton bookkeeping is deferred to the sidecar batch
                # built at chunk end.  Nothing in a stretch can pair,
                # complete, or expire before ``stop``.
                stats.records += stop - pos
                self._deadline_seq += stop - pos
                self._now = ts_list[stop - 1]
                seg = prefixes[pos:stop]
                if bool((seg == seg[0]).all()):
                    # Single-prefix stretch (the common shape of steady
                    # traffic): one C-speed list extend.
                    prefix_net = pf_list[pos]
                    bucket = history.get(prefix_net)
                    if bucket is None:
                        history[prefix_net] = hist_pairs[pos:stop]
                    else:
                        bucket.extend(hist_pairs[pos:stop])
                else:
                    for i in range(pos, stop):
                        prefix_net = pf_list[i]
                        bucket = history.get(prefix_net)
                        if bucket is None:
                            history[prefix_net] = [hist_pairs[i]]
                        else:
                            bucket.append(hist_pairs[i])
                pos = stop
                continue

            # Event record: replicate process() exactly — expire, prune
            # on the 20k boundary, then chain (or count a deferred bulk
            # insert when the record only stopped here for a deadline or
            # pruning tick).
            timestamp = ts_list[pos]
            self._now = timestamp
            stats.records += 1
            self._chunk_scan_upto = pos
            self._expire(timestamp)
            if pos == next_prune:
                for prefix_net in list(history):
                    if prefix_net not in self._open_loops:
                        self._prune_history(prefix_net, timestamp)
                next_prune += 20_000
            prefix_net = pf_list[pos]
            bucket = history.get(prefix_net)
            if bucket is None:
                history[prefix_net] = [hist_pairs[pos]]
            else:
                bucket.append(hist_pairs[pos])
            if replay_list[pos]:
                off = first + pos * stride
                key_off = pos * length
                self._chain(index0 + pos, timestamp,
                            view[off:off + length],
                            key=masked_bytes[key_off:key_off + length],
                            ttl=ttl_list[pos])
                if pos == replay_positions[rpi]:
                    rpi += 1
            else:
                self._deadline_seq += 1
            pos += 1

        # Park this chunk's bulk singletons as one columnar batch.  The
        # per-record columns stay full-chunk (replay positions read -1
        # in ``pf``, so they are dead by construction); only the hash
        # probe columns are compacted to the bulk entries.
        if bool(bulk_mask.any()):
            bulk_hashes = hashes[bulk_mask]
            order = np.argsort(bulk_hashes)
            batch = _BulkBatch(
                keys=masked_bytes,
                ts=ts_np,
                dl=dl_np,
                ttls=ttls,
                pf=np.where(bulk_mask, prefixes, np.int64(-1)),
                hsorted=bulk_hashes[order],
                hpos=bulk_mask.nonzero()[0][order],
                dl_last=float(dl_np[-1]),
                data=chunk.data,
                first=first,
                stride=stride,
                length=length,
                index0=index0,
            )
            self._bulk_batches.append(batch)
        self._chunk_scan = None
        self._chunk_scan_upto = 0

        # Catch-up drain: the reference ran the singleton sweep at every
        # record, so by the last record everything due has been evicted.
        now = self._now
        heappop = heapq.heappop
        singletons = self._singletons
        singleton_deadlines = self._singleton_deadlines
        while singleton_deadlines and singleton_deadlines[0][0] <= now:
            _, key, index = heappop(singleton_deadlines)
            current = singletons.get(key)
            if current is not None and current[0] == index:
                del singletons[key]
                self._drop_singleton_key(self._prefix_net(current[3]), key)

        # Retire batches whose every entry is past its deadline.
        batches = self._bulk_batches
        while batches and batches[0].dl_last <= now:
            batches.pop(0)
        return emitted

    # -- batched-tier sidecar ---------------------------------------------------

    def _maybe_promote(self, batch: _BulkBatch, pos: int,
                       now: float) -> None:
        if batch.pf[pos] >= 0 and batch.dl[pos] > now:
            self._promote(batch, pos)

    def _promote(self, batch: _BulkBatch, pos: int) -> None:
        """Move one live sidecar singleton into the exact per-record
        state (dict, prefix set, deadline heap), tombstoning the sidecar
        entry.  The heap push is valid at any time: heap operations
        never assume global ordering of pushed values."""
        length = batch.length
        key_off = pos * length
        key = batch.keys[key_off:key_off + length]
        index = batch.index0 + pos
        off = batch.first + pos * batch.stride
        data = memoryview(batch.data)[off:off + length]
        self._singletons[key] = (
            index, float(batch.ts[pos]), int(batch.ttls[pos]), data
        )
        self._singleton_prefixes.setdefault(
            int(batch.pf[pos]), set()
        ).add(key)
        heapq.heappush(
            self._singleton_deadlines, (float(batch.dl[pos]), key, index)
        )
        batch.pf[pos] = -1

    def _materialize_bulk(self) -> None:
        """Promote every live sidecar singleton into the exact state —
        a per-record feed (or snapshot restore) is about to probe
        ``_singletons`` directly."""
        np = vectorize.np
        now = self._now
        for batch in self._bulk_batches:
            start = int(np.searchsorted(batch.dl, now, side="right"))
            live = np.flatnonzero(batch.pf[start:] >= 0)
            for pos in (live + start).tolist():
                self._promote(batch, pos)
        self._bulk_batches.clear()

    def _bulk_live_count(self) -> int:
        """Sidecar singletons still pending eviction at ``_now``."""
        np = vectorize.np
        now = self._now
        count = 0
        for batch in self._bulk_batches:
            start = int(np.searchsorted(batch.dl, now, side="right"))
            if start < len(batch.pf):
                count += int((batch.pf[start:] >= 0).sum())
        return count

    def _bulk_singleton_may_merge(self, prefix_net: int, horizon: float,
                                  now: float) -> bool:
        """Sidecar arm of :meth:`_singleton_may_merge`: scan parked
        batches (and the in-flight chunk's columns) for a live singleton
        on this prefix inside the merge window.  Tombstoned entries have
        ``pf == -1`` and can never match a real prefix."""
        np = vectorize.np
        for batch in self._bulk_batches:
            start = int(np.searchsorted(batch.dl, now, side="right"))
            if start == len(batch.pf):
                continue
            if bool(((batch.pf[start:] == prefix_net)
                     & (batch.ts[start:] < horizon)).any()):
                return True
        scan = self._chunk_scan
        if scan is not None:
            upto = self._chunk_scan_upto
            if upto:
                ts_np, dl_np, prefixes, bulk_mask = scan
                if bool((bulk_mask[:upto]
                         & (prefixes[:upto] == prefix_net)
                         & (dl_np[:upto] > now)
                         & (ts_np[:upto] < horizon)).any()):
                    return True
        return False

    def process_trace_columnar(self, ctrace) -> list[RoutingLoop]:
        """Feed a whole :class:`~repro.net.columnar.ColumnarTrace`;
        returns all loops (including those closed by the final flush)."""
        loops: list[RoutingLoop] = []
        with self.tracer.phase("streaming.process_trace",
                               clock="wall") as phase:
            for chunk in ctrace.chunks:
                loops.extend(self.process_chunk(chunk))
            loops.extend(self.flush())
            phase.note(records=self.stats.records, loops=len(loops))
        return loops

    def flush(self) -> list[RoutingLoop]:
        """End of input: complete every open stream and close every loop."""
        self._emitted = []
        infinity = float("inf")
        self._expire(infinity)
        if self._bulk_batches:
            # Every sidecar singleton is past its deadline at +inf —
            # the arithmetic twin of the eviction sweep above.
            self._bulk_batches.clear()
        return self._emitted

    def state_snapshot(self) -> dict:
        """JSON-ready view of the detector's live state for the
        monitoring ``/state`` endpoint: in-flight candidate streams,
        open (unemitted) loops, and the running stats.

        This reads sizes and summaries only — it never mutates detector
        state, so serving it from another thread cannot change what the
        detector emits.
        """
        open_streams = [
            {
                "replicas": len(stream.replicas),
                "first_ttl": stream.replicas[0].ttl,
                "last_ttl": stream.last.ttl,
                "start": stream.replicas[0].timestamp,
                "last_seen": stream.last.timestamp,
            }
            for streams in self._open_streams.values()
            for stream in streams
        ]
        open_loops = [
            {
                "prefix_net": loop.prefix_net,
                "streams": len(loop.streams),
                "start": min(s.start for s in loop.streams),
                "end": loop.end,
            }
            for loop in self._open_loops.values()
        ]
        stats = self.stats
        singleton_count = len(self._singletons)
        if self._bulk_batches:
            singleton_count += self._bulk_live_count()
        return {
            "now": None if self._now == float("-inf") else self._now,
            "singletons": singleton_count,
            "open_streams": open_streams,
            "open_loops": open_loops,
            "tracked_prefixes": len(self._history),
            "stats": {
                "records": stats.records,
                "skipped_short": stats.skipped_short,
                "streams_completed": stats.streams_completed,
                "streams_rejected_small": stats.streams_rejected_small,
                "streams_rejected_conflict": stats.streams_rejected_conflict,
                "loops_emitted": stats.loops_emitted,
            },
        }

    def register_metrics(self, registry) -> None:
        """Publish :class:`StreamingStats` via a weakly-held collector;
        the per-record path keeps its plain-int counters."""
        registry.register_collector(self._publish_metrics)

    def _publish_metrics(self, registry) -> None:
        stats = self.stats
        registry.counter(
            "streaming_records_total", "Records fed to the detector"
        ).set(stats.records)
        registry.counter(
            "streaming_records_skipped_short_total",
            "Records below the minimum capture length",
        ).set(stats.skipped_short)
        registry.counter(
            "streaming_streams_completed_total",
            "Candidate replica streams that went quiescent",
        ).set(stats.streams_completed)
        registry.counter(
            "streaming_streams_rejected_small_total",
            "Streams rejected for too few replicas",
        ).set(stats.streams_rejected_small)
        registry.counter(
            "streaming_streams_rejected_conflict_total",
            "Streams rejected by prefix-consistency validation",
        ).set(stats.streams_rejected_conflict)
        registry.counter(
            "streaming_loops_emitted_total", "Routing loops emitted"
        ).set(stats.loops_emitted)

    # -- step 1: chaining -------------------------------------------------------

    def _chain(self, index: int, timestamp: float, data: bytes,
               key: bytes | None = None, ttl: int | None = None) -> None:
        config = self.config
        if key is None:
            # The batched tier passes the key and TTL it already
            # extracted from the masked slab; the per-record path
            # computes them here.
            key = mask_mutable_fields(data)
            ttl = data[8]

        streams = self._open_streams.get(key)
        if streams is not None:
            for stream in reversed(streams):
                last = stream.last
                if (last.ttl - ttl >= config.min_ttl_delta
                        and timestamp - last.timestamp
                        <= config.max_replica_gap):
                    stream.replicas.append(
                        Replica(index=index, timestamp=timestamp, ttl=ttl)
                    )
                    self._add_member(data, index)
                    self._push_stream_deadline(stream)
                    return

        previous = self._singletons.get(key)
        if previous is not None:
            prev_index, prev_time, prev_ttl, prev_data = previous
            if (prev_ttl - ttl >= config.min_ttl_delta
                    and timestamp - prev_time <= config.max_replica_gap):
                if type(prev_data) is not bytes:
                    # Columnar feeds store zero-copy views; materialize
                    # only now that a stream actually formed.
                    prev_data = bytes(prev_data)
                stream = _OpenStream(
                    key=key,
                    first_data=prev_data,
                    replicas=[
                        Replica(index=prev_index, timestamp=prev_time,
                                ttl=prev_ttl),
                        Replica(index=index, timestamp=timestamp, ttl=ttl),
                    ],
                )
                self._open_streams.setdefault(key, []).append(stream)
                del self._singletons[key]
                prefix_net = self._prefix_net(prev_data)
                self._drop_singleton_key(prefix_net, key)
                self._open_stream_count[prefix_net] = (
                    self._open_stream_count.get(prefix_net, 0) + 1
                )
                self._add_member(prev_data, prev_index)
                self._add_member(data, index)
                self._push_stream_deadline(stream)
                return

        self._singletons[key] = (index, timestamp, ttl, data)
        self._singleton_prefixes.setdefault(
            self._prefix_net(data), set()
        ).add(key)
        self._deadline_seq += 1
        heapq.heappush(
            self._singleton_deadlines,
            (timestamp + config.max_replica_gap, key, index),
        )

    def _prefix_net(self, data: bytes) -> int:
        return int.from_bytes(data[16:20], "big") >> self._shift

    def _add_member(self, data: bytes, index: int) -> None:
        self._members.setdefault(self._prefix_net(data), set()).add(index)

    def _push_stream_deadline(self, stream: _OpenStream) -> None:
        self._deadline_seq += 1
        heapq.heappush(
            self._stream_deadlines,
            (stream.last.timestamp + self.config.max_replica_gap,
             self._deadline_seq, stream),
        )

    # -- deadline processing ------------------------------------------------------

    def _expire(self, now: float) -> None:
        # Evict stale singletons.
        while (self._singleton_deadlines
               and self._singleton_deadlines[0][0] <= now):
            _, key, index = heapq.heappop(self._singleton_deadlines)
            current = self._singletons.get(key)
            if current is not None and current[0] == index:
                del self._singletons[key]
                self._drop_singleton_key(self._prefix_net(current[3]), key)

        # Complete quiescent streams.
        while self._stream_deadlines and self._stream_deadlines[0][0] <= now:
            deadline, _, stream = heapq.heappop(self._stream_deadlines)
            true_deadline = (stream.last.timestamp
                             + self.config.max_replica_gap)
            if true_deadline > now:
                continue  # stream was extended; a fresher deadline exists
            if deadline < true_deadline:
                continue  # superseded entry
            streams = self._open_streams.get(stream.key)
            if streams is None or stream not in streams:
                continue
            streams.remove(stream)
            if not streams:
                del self._open_streams[stream.key]
            self._complete_stream(stream)

        # Close loops whose merge window has passed.
        while self._loop_deadlines and self._loop_deadlines[0][0] <= now:
            _, _, prefix_net = heapq.heappop(self._loop_deadlines)
            loop = self._open_loops.get(prefix_net)
            if loop is None:
                continue
            deadline = loop.end + self.config.merge_gap
            if deadline > now:
                continue  # extended since this entry was pushed
            if (self._open_stream_count.get(prefix_net, 0) > 0
                    or self._singleton_may_merge(prefix_net, loop, now)):
                # A candidate stream for this prefix is still chaining
                # (or a singleton inside the merge window could still
                # start one); re-check once it resolves.
                self._push_loop_deadline(prefix_net, now)
                continue
            del self._open_loops[prefix_net]
            self._emit(loop)
            self._prune_history(prefix_net, now)

    def _drop_singleton_key(self, prefix_net: int, key: bytes) -> None:
        keys = self._singleton_prefixes.get(prefix_net)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._singleton_prefixes[prefix_net]

    def _singleton_may_merge(self, prefix_net: int, loop: _OpenLoop,
                             now: float) -> bool:
        """True while a live singleton on this prefix sits inside the
        loop's merge window: if it chains, the resulting stream starts at
        the singleton's timestamp and would merge into the loop, so the
        loop cannot close yet.  (Singletons past the window can only seed
        streams that start a new loop — those never block emission.)

        Checks the exact per-record state first, then the batched tier's
        sidecar, whose entries are live while their deadline is still
        ahead of ``now``.
        """
        horizon = loop.end + self.config.merge_gap
        if any(self._singletons[key][1] < horizon
               for key in self._singleton_prefixes.get(prefix_net, ())):
            return True
        if self._bulk_batches or self._chunk_scan is not None:
            return self._bulk_singleton_may_merge(prefix_net, horizon, now)
        return False

    def _push_loop_deadline(self, prefix_net: int, now: float) -> None:
        loop = self._open_loops.get(prefix_net)
        if loop is None:
            return
        deadline = max(loop.end + self.config.merge_gap,
                       now + self.config.max_replica_gap)
        if deadline == float("inf"):
            deadline = now  # flush: fire immediately on the next sweep
        self._deadline_seq += 1
        heapq.heappush(self._loop_deadlines,
                       (deadline, self._deadline_seq, prefix_net))

    # -- steps 2 and 3 ---------------------------------------------------------------

    def _complete_stream(self, open_stream: _OpenStream) -> None:
        self.stats.streams_completed += 1
        data = open_stream.first_data
        prefix_net = self._prefix_net(data)
        self._open_stream_count[prefix_net] = max(
            0, self._open_stream_count.get(prefix_net, 0) - 1
        )
        config = self.config
        if len(open_stream.replicas) < config.min_stream_size:
            self.stats.streams_rejected_small += 1
            return
        stream = ReplicaStream(
            key=open_stream.key,
            replicas=open_stream.replicas,
            src=IPv4Address.from_bytes(data[12:16]),
            dst=IPv4Address.from_bytes(data[16:20]),
            protocol=data[9],
            first_data=data,
        )
        if config.check_prefix_consistency and self._window_has_non_member(
            prefix_net, stream.start, stream.end
        ):
            self.stats.streams_rejected_conflict += 1
            return
        self._merge_stream(prefix_net, stream)

    def _window_has_non_member(self, prefix_net: int, start: float,
                               end: float) -> bool:
        members = self._members.get(prefix_net, ())
        for timestamp, index in self._history.get(prefix_net, ()):
            if start <= timestamp <= end and index not in members:
                return True
        return False

    def _merge_stream(self, prefix_net: int, stream: ReplicaStream) -> None:
        loop = self._open_loops.get(prefix_net)
        if loop is not None:
            gap_start, gap_end = loop.end, stream.start
            mergeable = (
                gap_end <= gap_start
                or (gap_end - gap_start < self.config.merge_gap
                    and not (self.config.check_gap_consistency
                             and self._window_has_non_member(
                                 prefix_net, gap_start, gap_end)))
            )
            if mergeable:
                loop.streams.append(stream)
                loop.end = max(loop.end, stream.end)
                self._push_loop_deadline(prefix_net, stream.end)
                return
            del self._open_loops[prefix_net]
            self._emit(loop)
        self._open_loops[prefix_net] = _OpenLoop(
            prefix_net=prefix_net, streams=[stream], end=stream.end
        )
        self._push_loop_deadline(prefix_net, stream.end)

    def _emit(self, loop: _OpenLoop) -> None:
        streams = sorted(loop.streams, key=lambda stream: stream.start)
        routing_loop = RoutingLoop(
            prefix=streams[0].dst_prefix(self.config.prefix_length),
            streams=streams,
        )
        self.stats.loops_emitted += 1
        # Loop intervals are in record-timestamp time, same domain as the
        # control-plane events of a simulated trace.
        self.tracer.span("loop", routing_loop.start, routing_loop.end,
                         prefix=str(routing_loop.prefix),
                         streams=routing_loop.stream_count)
        self._emitted.append(routing_loop)
        if self.on_loop is not None:
            self.on_loop(routing_loop)

    def _prune_history(self, prefix_net: int, now: float) -> None:
        """Drop per-prefix history/members no loop can reference anymore."""
        if now == float("inf"):
            self._history.pop(prefix_net, None)
            self._members.pop(prefix_net, None)
            return
        horizon = now - (self.config.merge_gap
                         + self.config.max_replica_gap)
        history = self._history.get(prefix_net)
        if not history:
            return
        kept = [(t, i) for t, i in history if t >= horizon]
        dropped = {i for t, i in history if t < horizon}
        if kept:
            self._history[prefix_net] = kept
        else:
            del self._history[prefix_net]
        members = self._members.get(prefix_net)
        if members:
            members -= dropped
            if not members:
                self._members.pop(prefix_net, None)
