"""Persistent-loop classification (the paper's deferred problem).

The paper analyzes transient loops and leaves persistent ones —
typically router misconfiguration, lasting until a human intervenes —
to future work.  This module provides the classification layer an
operator needs on top of the detector: given merged routing loops, label
each as *transient* (resolves within a convergence-scale horizon) or
*persistent* (long-lived or chronically recurring on the same prefix).

The simulator can also *create* persistent loops for validation:
:func:`inject_static_route_conflict` installs the classic
misconfiguration — two routers with static routes pointing at each
other for a prefix — which no amount of protocol convergence repairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

from repro.net.addr import IPv4Prefix
from repro.core.merge import RoutingLoop
from repro.routing.bgp import BgpProcess
from repro.routing.topology import Topology, TopologyError


class LoopClass(Enum):
    """Transient vs. persistent, per the paper's Sec. I taxonomy."""

    TRANSIENT = "transient"
    PERSISTENT = "persistent"


@dataclass(slots=True)
class ClassifiedLoop:
    """A routing loop with its transient/persistent label."""

    loop: RoutingLoop
    loop_class: LoopClass
    reason: str


@dataclass(slots=True, frozen=True)
class PersistenceCriteria:
    """Thresholds separating convergence events from misconfiguration.

    ``max_transient_duration`` — any loop outliving the slowest plausible
    convergence (BGP: minutes) is persistent.  ``recurrence_count`` /
    ``recurrence_horizon`` — a prefix that keeps looping again and again
    is persistently broken even if each episode is short (route
    oscillation).
    """

    max_transient_duration: float = 180.0
    recurrence_count: int = 4
    recurrence_horizon: float = 1800.0

    def __post_init__(self) -> None:
        if self.max_transient_duration <= 0:
            raise ValueError("max_transient_duration must be positive")
        if self.recurrence_count < 2:
            raise ValueError("recurrence_count must be >= 2")


def classify_loops(
    loops: Sequence[RoutingLoop],
    criteria: PersistenceCriteria | None = None,
) -> list[ClassifiedLoop]:
    """Label each loop transient or persistent."""
    criteria = criteria or PersistenceCriteria()
    by_prefix: dict[IPv4Prefix, list[RoutingLoop]] = {}
    for loop in loops:
        by_prefix.setdefault(loop.prefix, []).append(loop)

    chronic_prefixes: set[IPv4Prefix] = set()
    for prefix, group in by_prefix.items():
        group.sort(key=lambda loop: loop.start)
        window: list[float] = []
        for loop in group:
            window.append(loop.start)
            window = [t for t in window
                      if loop.start - t <= criteria.recurrence_horizon]
            if len(window) >= criteria.recurrence_count:
                chronic_prefixes.add(prefix)
                break

    classified = []
    for loop in loops:
        if loop.duration > criteria.max_transient_duration:
            classified.append(ClassifiedLoop(
                loop=loop,
                loop_class=LoopClass.PERSISTENT,
                reason=(f"duration {loop.duration:.1f}s exceeds the "
                        f"{criteria.max_transient_duration:.0f}s "
                        f"convergence horizon"),
            ))
        elif loop.prefix in chronic_prefixes:
            classified.append(ClassifiedLoop(
                loop=loop,
                loop_class=LoopClass.PERSISTENT,
                reason=(f"prefix loops chronically "
                        f"(>= {criteria.recurrence_count} episodes within "
                        f"{criteria.recurrence_horizon:.0f}s)"),
            ))
        else:
            classified.append(ClassifiedLoop(
                loop=loop,
                loop_class=LoopClass.TRANSIENT,
                reason="resolves within the convergence horizon",
            ))
    return classified


def persistent_fraction(classified: Sequence[ClassifiedLoop]) -> float:
    """Share of loops labelled persistent (the paper found these rare)."""
    if not classified:
        return 0.0
    persistent = sum(
        1 for item in classified
        if item.loop_class is LoopClass.PERSISTENT
    )
    return persistent / len(classified)


def inject_static_route_conflict(
    bgp: BgpProcess,
    topology: Topology,
    prefix: IPv4Prefix,
    router_a: str,
    router_b: str,
) -> None:
    """Misconfigure two adjacent routers into a permanent loop.

    Installs, in each router's prefix FIB, a static route for ``prefix``
    whose "egress" is the *other* router — the textbook static-route
    conflict.  Because these entries are static they survive every
    convergence event; every packet to ``prefix`` entering either router
    ping-pongs until its TTL dies.  Used to validate persistent-loop
    classification end to end.
    """
    link = topology.link_between(router_a, router_b)  # must be adjacent
    if not link.up:
        raise TopologyError(f"link {link.name} is down")
    now = bgp.scheduler.now
    bgp.fib(router_a).install(prefix, router_b, now)
    bgp.fib(router_b).install(prefix, router_a, now)
