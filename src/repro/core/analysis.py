"""Characterization statistics — one function per figure of the paper.

All functions take detector output (streams/loops) or raw traces and
return :mod:`repro.stats` objects; the benchmark harness prints them as
the figures' series.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.net.addr import IPv4Address
from repro.net.packet import (
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
)
from repro.net.trace import Trace, TraceRecord
from repro.core.merge import RoutingLoop
from repro.core.replica import ReplicaStream
from repro.stats.cdf import EmpiricalCdf
from repro.stats.hist import CategoricalDistribution

#: Figure 5/6 category labels, in the paper's x-axis order.  A packet can
#: fall into several (a SYN-ACK counts as TCP, SYN and ACK).
TRAFFIC_TYPE_LABELS: tuple[str, ...] = (
    "TCP", "ACK", "PSH", "RST", "URG", "SYN", "FIN",
    "UDP", "MCAST", "ICMP", "OTHER",
)

_TCP_FLAG_LABELS: tuple[tuple[int, str], ...] = (
    (0x10, "ACK"),
    (0x08, "PSH"),
    (0x04, "RST"),
    (0x20, "URG"),
    (0x02, "SYN"),
    (0x01, "FIN"),
)


def classify_bytes(data: bytes) -> frozenset[str]:
    """Figure 5/6 labels for one captured packet's bytes.

    Works from the 40-byte capture alone: protocol at IP offset 9, TCP
    flags at TCP offset 13 (wire offset 33), class-D destination for
    MCAST.
    """
    if len(data) < 20:
        return frozenset()
    labels: set[str] = set()
    protocol = data[9]
    dst_top = data[16] >> 4
    if dst_top == 0xE:
        labels.add("MCAST")
    if protocol == IPPROTO_TCP:
        labels.add("TCP")
        ihl = (data[0] & 0xF) * 4
        flags_offset = ihl + 13
        if len(data) > flags_offset:
            flags = data[flags_offset]
            for bit, label in _TCP_FLAG_LABELS:
                if flags & bit:
                    labels.add(label)
    elif protocol == IPPROTO_UDP:
        if "MCAST" not in labels:
            labels.add("UDP")
    elif protocol == IPPROTO_ICMP:
        labels.add("ICMP")
    else:
        labels.add("OTHER")
    return frozenset(labels)


def classify_record(record: TraceRecord) -> frozenset[str]:
    """Figure 5/6 labels for a trace record."""
    return classify_bytes(record.data)


# -- Figure 2 -----------------------------------------------------------------


def ttl_delta_distribution(
    streams: Sequence[ReplicaStream],
) -> CategoricalDistribution:
    """Distribution of per-stream TTL deltas (loop sizes) — Figure 2."""
    return CategoricalDistribution.from_items(
        stream.ttl_delta for stream in streams
    )


# -- Figure 3 -----------------------------------------------------------------


def stream_size_cdf(streams: Sequence[ReplicaStream]) -> EmpiricalCdf:
    """CDF of the number of replicas per stream — Figure 3."""
    return EmpiricalCdf.from_samples(stream.size for stream in streams)


# -- Figure 4 -----------------------------------------------------------------


def spacing_cdf(streams: Sequence[ReplicaStream]) -> EmpiricalCdf:
    """CDF of mean inter-replica spacing per stream, in seconds — Figure 4.

    The paper averages the spacings within each stream and plots one value
    per stream; so do we.
    """
    return EmpiricalCdf.from_samples(
        stream.mean_spacing for stream in streams
    )


# -- Figures 5 and 6 -----------------------------------------------------------


def traffic_type_distribution(
    records: Iterable[TraceRecord] | Trace,
) -> CategoricalDistribution:
    """Traffic-type label counts over records — Figure 5 on a whole trace.

    Fractions are of *packets*, so multi-label packets make the label
    fractions sum to more than 1, exactly as in the paper's bars.
    """
    distribution = CategoricalDistribution()
    total = 0
    for record in records:
        total += 1
        for label in classify_bytes(record.data):
            distribution.add(label)
    # The true packet count (multi-label packets count once here).
    distribution.packets = total  # type: ignore[attr-defined]
    return distribution


def looped_traffic_type_distribution(
    streams: Sequence[ReplicaStream],
) -> CategoricalDistribution:
    """Traffic-type labels of looped packets (one per stream) — Figure 6."""
    distribution = CategoricalDistribution()
    for stream in streams:
        for label in classify_bytes(stream.first_data):
            distribution.add(label)
    distribution.packets = len(streams)  # type: ignore[attr-defined]
    return distribution


def traffic_type_fractions(
    distribution: CategoricalDistribution,
) -> dict[str, float]:
    """Per-label fraction of packets (not of label occurrences)."""
    packets = getattr(distribution, "packets", None)
    if not packets:
        return {}
    return {
        label: distribution.counts.get(label, 0) / packets
        for label in TRAFFIC_TYPE_LABELS
    }


# -- Figure 7 -------------------------------------------------------------------


def destination_timeseries(
    streams: Sequence[ReplicaStream],
) -> list[tuple[float, IPv4Address]]:
    """(start time, destination) of each stream — Figure 7's scatter."""
    return [(stream.start, stream.dst) for stream in streams]


def destination_class_fractions(
    streams: Sequence[ReplicaStream],
) -> dict[str, float]:
    """Fraction of streams whose destination sits in each classful space."""
    if not streams:
        return {}
    counts = {"A": 0, "B": 0, "C": 0, "other": 0}
    for stream in streams:
        dst = stream.dst
        if dst.is_class_c():
            counts["C"] += 1
        elif dst.is_class_b():
            counts["B"] += 1
        elif dst.is_class_a():
            counts["A"] += 1
        else:
            counts["other"] += 1
    total = len(streams)
    return {name: count / total for name, count in counts.items()}


# -- Figure 8 ---------------------------------------------------------------------


def stream_duration_cdf(streams: Sequence[ReplicaStream]) -> EmpiricalCdf:
    """CDF of replica-stream durations in seconds — Figure 8."""
    return EmpiricalCdf.from_samples(stream.duration for stream in streams)


# -- Figure 9 ---------------------------------------------------------------------


def loop_duration_cdf(loops: Sequence[RoutingLoop]) -> EmpiricalCdf:
    """CDF of merged routing-loop durations in seconds — Figure 9."""
    return EmpiricalCdf.from_samples(loop.duration for loop in loops)


# -- initial-TTL inference (the explanation behind Figs. 3 and 8) ----------------

#: Common OS default TTLs, descending.
INITIAL_TTL_BASES: tuple[int, ...] = (255, 128, 64, 32)


def infer_initial_ttl_base(observed_ttl: int) -> int:
    """The smallest common initial TTL at or above an observed TTL.

    A packet observed with TTL 57 almost surely started at 64 (Linux);
    117 at 128 (Windows); 250 at 255.  This is the inference the paper
    uses to explain Figure 3's jumps at ~31 and ~63 replicas.
    """
    if not 0 <= observed_ttl <= 255:
        raise ValueError(f"TTL out of range: {observed_ttl}")
    for base in reversed(INITIAL_TTL_BASES):
        if observed_ttl <= base:
            return base
    return 255


def initial_ttl_base_distribution(
    records: Iterable[TraceRecord] | Trace,
) -> CategoricalDistribution:
    """Distribution of inferred initial-TTL bases over trace records.

    Applied to all traffic it estimates the OS mix feeding the link;
    applied to looped streams' first replicas it predicts where the
    stream-size CDF must jump (base / ttl_delta).
    """
    distribution = CategoricalDistribution()
    for record in records:
        data = record.data
        if len(data) < 20:
            continue
        distribution.add(infer_initial_ttl_base(data[8]))
    return distribution


def predicted_stream_size_steps(
    streams: Sequence[ReplicaStream],
) -> dict[int, int]:
    """For each stream: the stream size its entry TTL and delta predict.

    A packet entering a delta-d loop with TTL t yields
    ``floor((t - 1) / d) + 1`` crossings.  Returns predicted-size counts;
    comparing against the actual sizes validates the Figure 3 mechanism.
    """
    predicted: dict[int, int] = {}
    for stream in streams:
        size = (stream.first_ttl - 1) // stream.ttl_delta + 1
        predicted[size] = predicted.get(size, 0) + 1
    return predicted
