"""Loop-lifecycle correlation: from injected failure to FIB convergence.

The paper's central question (Sec. VI, Fig. 9) is how long transient
loops live and why.  Given a trace produced by :mod:`repro.obs.tracing`
— control-plane events from the simulator (``link_down``/``link_up``,
``adjacency_*``, ``lsa_flood``, ``spf_run``, ``igp_fib_install``,
``bgp_withdraw``/``bgp_advertise``, ``fib_mutation``) plus data-plane
``loop`` spans from the detector — this module answers it *per loop*:

* **which failure caused it** — the closest preceding injected event
  whose protocol family could have produced the loop (BGP events must
  match the loop's prefix; IGP events are topology-wide);
* **how long until the responsible FIBs converged** — the last relevant
  FIB install inside the loop's lifetime;
* **how the loop's duration decomposes** into the convergence phases
  the paper names: failure detection, LSA flooding, SPF, FIB update.

The correlator works on plain record dicts, so it runs equally on a
live :class:`~repro.obs.tracing.Tracer`'s ``records`` and on a JSONL
file reloaded with :func:`~repro.obs.tracing.read_trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.net.addr import IPv4Prefix

#: Event names that represent *injected* failures/repairs — the root
#: causes loops are attributed to.
IGP_FAILURE_EVENTS = ("link_down", "link_up")
EGP_FAILURE_EVENTS = ("bgp_withdraw", "bgp_advertise")

#: How far (seconds) before a loop's first replica its cause may lie.
#: BGP propagation is slow (seconds to tens of seconds), IGP detection
#: is sub-second; the windows mirror :mod:`repro.core.correlate`.
DEFAULT_EGP_LEAD = 45.0
DEFAULT_IGP_LEAD = 15.0
#: Allowed clock skew: a cause observed just after the first replica.
DEFAULT_LAG = 2.0


@dataclass(slots=True)
class LoopLifecycle:
    """One detected loop joined with its control-plane history."""

    prefix: str
    start: float
    end: float
    cause: dict[str, Any] | None = None
    cause_family: str = "unknown"  # "igp" | "egp" | "unknown"
    detection_at: float | None = None
    flood_at: float | None = None
    spf_at: float | None = None
    fib_converged_at: float | None = None
    fib_installs: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def attributed(self) -> bool:
        return self.cause is not None

    @property
    def cause_time(self) -> float | None:
        return self.cause["t"] if self.cause else None

    @property
    def convergence_time(self) -> float | None:
        """Failure → last relevant FIB install (None if unattributed)."""
        if self.cause is None or self.fib_converged_at is None:
            return None
        return self.fib_converged_at - self.cause["t"]

    def phase_offsets(self) -> dict[str, float]:
        """Convergence phases as offsets (s) from the causing failure."""
        if self.cause is None:
            return {}
        t0 = self.cause["t"]
        out: dict[str, float] = {}
        for label, when in (("detection", self.detection_at),
                            ("flooding", self.flood_at),
                            ("spf", self.spf_at),
                            ("fib_install", self.fib_converged_at)):
            if when is not None:
                out[label] = when - t0
        return out


@dataclass(slots=True)
class LifecycleReport:
    """All lifecycles of one run plus aggregate views."""

    lifecycles: list[LoopLifecycle] = field(default_factory=list)

    @property
    def attributed(self) -> list[LoopLifecycle]:
        return [lc for lc in self.lifecycles if lc.attributed]

    @property
    def attributed_fraction(self) -> float:
        if not self.lifecycles:
            return 1.0
        return len(self.attributed) / len(self.lifecycles)

    def cause_counts(self) -> dict[str, int]:
        out = {"igp": 0, "egp": 0, "unknown": 0}
        for lc in self.lifecycles:
            out[lc.cause_family] += 1
        return out

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (per-loop rows plus aggregates)."""
        return {
            "loops": len(self.lifecycles),
            "attributed": len(self.attributed),
            "attributed_fraction": self.attributed_fraction,
            "causes": self.cause_counts(),
            "lifecycles": [
                {
                    "prefix": lc.prefix,
                    "start": lc.start,
                    "end": lc.end,
                    "duration": lc.duration,
                    "cause": (lc.cause["name"] if lc.cause else None),
                    "cause_family": lc.cause_family,
                    "cause_time": lc.cause_time,
                    "convergence_time": lc.convergence_time,
                    "phases": lc.phase_offsets(),
                }
                for lc in self.lifecycles
            ],
        }

    def render(self) -> str:
        """Human-readable lifecycle report for the CLI."""
        counts = self.cause_counts()
        lines = [
            f"loop lifecycle: {len(self.attributed)}/{len(self.lifecycles)} "
            f"loops attributed "
            f"({self.attributed_fraction:.0%}; "
            f"igp {counts['igp']}, egp {counts['egp']}, "
            f"unknown {counts['unknown']})",
        ]
        for lc in self.lifecycles:
            if lc.cause is None:
                lines.append(
                    f"  {lc.prefix}  {lc.start:.3f}..{lc.end:.3f}s "
                    f"({lc.duration:.3f}s)  cause: unknown"
                )
                continue
            phases = lc.phase_offsets()
            phase_text = ", ".join(
                f"{label} +{offset:.3f}s" for label, offset in phases.items()
            )
            convergence = (f"{lc.convergence_time:.3f}s"
                           if lc.convergence_time is not None else "n/a")
            lines.append(
                f"  {lc.prefix}  {lc.start:.3f}..{lc.end:.3f}s "
                f"({lc.duration:.3f}s)  cause: {lc.cause['name']} "
                f"@{lc.cause['t']:.3f}s  convergence: {convergence}"
                + (f"  [{phase_text}]" if phase_text else "")
            )
        return "\n".join(lines)


def _loop_rows(
    loops: Sequence[Any] | None,
    records: Sequence[dict[str, Any]],
) -> list[tuple[str, float, float]]:
    """Normalize the loop source to ``(prefix, start, end)`` rows.

    ``loops`` may be :class:`~repro.core.merge.RoutingLoop` objects; when
    None, the data-plane ``loop`` spans already present in ``records``
    are used (the CLI writes them after detection).
    """
    if loops is not None:
        return [(str(loop.prefix), loop.start, loop.end) for loop in loops]
    rows = []
    for record in records:
        if record.get("type") == "span" and record.get("name") == "loop":
            rows.append((record["attrs"].get("prefix", "0.0.0.0/0"),
                         record["t0"], record["t1"]))
    rows.sort(key=lambda row: row[1])
    return rows


def _overlaps(event_prefix: str | None, loop_prefix: IPv4Prefix) -> bool:
    if not event_prefix:
        return False
    try:
        parsed = IPv4Prefix.parse(event_prefix)
    except ValueError:
        return False
    return parsed.overlaps(loop_prefix)


def correlate_lifecycles(
    records: Iterable[dict[str, Any]],
    loops: Sequence[Any] | None = None,
    egp_lead: float = DEFAULT_EGP_LEAD,
    igp_lead: float = DEFAULT_IGP_LEAD,
    lag: float = DEFAULT_LAG,
) -> LifecycleReport:
    """Join control-plane trace records with detected loops.

    Causes are chosen per loop as the *latest* eligible failure event not
    later than ``loop.start + lag``: BGP withdrawals/announcements are
    eligible within ``egp_lead`` seconds before the loop and only when
    their prefix overlaps the loop's; link events are eligible within
    ``igp_lead``.  A closer cause wins regardless of family.
    """
    if egp_lead < 0 or igp_lead < 0 or lag < 0:
        raise ValueError("windows must be non-negative")
    records = list(records)
    evts = [r for r in records if r.get("type") == "event"]
    evts.sort(key=lambda r: r["t"])
    by_name: dict[str, list[dict[str, Any]]] = {}
    for record in evts:
        by_name.setdefault(record["name"], []).append(record)

    report = LifecycleReport()
    for prefix_text, start, end in _loop_rows(loops, records):
        loop_prefix = IPv4Prefix.parse(prefix_text)
        lifecycle = LoopLifecycle(prefix=prefix_text, start=start, end=end)

        candidates: list[tuple[float, str, dict[str, Any]]] = []
        for name in IGP_FAILURE_EVENTS:
            for record in by_name.get(name, ()):
                if start - igp_lead <= record["t"] <= start + lag:
                    candidates.append((record["t"], "igp", record))
        for name in EGP_FAILURE_EVENTS:
            for record in by_name.get(name, ()):
                if (start - egp_lead <= record["t"] <= start + lag
                        and _overlaps(record["attrs"].get("prefix"),
                                      loop_prefix)):
                    candidates.append((record["t"], "egp", record))
        if candidates:
            when, family, cause = max(candidates, key=lambda c: c[0])
            lifecycle.cause = cause
            lifecycle.cause_family = family
            _decompose(lifecycle, by_name, loop_prefix, when, end + lag)
        report.lifecycles.append(lifecycle)
    return report


def _first_at_or_after(rows: list[dict[str, Any]], t0: float,
                       limit: float) -> float | None:
    for record in rows:
        if t0 <= record["t"] <= limit:
            return record["t"]
    return None


def _decompose(
    lifecycle: LoopLifecycle,
    by_name: dict[str, list[dict[str, Any]]],
    loop_prefix: IPv4Prefix,
    cause_time: float,
    limit: float,
) -> None:
    """Fill convergence-phase timestamps in ``[cause_time, limit]``."""
    adjacency = (by_name.get("adjacency_lost", [])
                 + by_name.get("adjacency_formed", []))
    adjacency.sort(key=lambda r: r["t"])
    lifecycle.detection_at = _first_at_or_after(adjacency, cause_time, limit)
    floods = (by_name.get("lsa_originated", [])
              + by_name.get("lsa_flood", []))
    floods.sort(key=lambda r: r["t"])
    lifecycle.flood_at = _first_at_or_after(floods, cause_time, limit)
    lifecycle.spf_at = _first_at_or_after(
        by_name.get("spf_run", []), cause_time, limit
    )

    if lifecycle.cause_family == "egp":
        # The loop ends when the last lagging router installs the new
        # egress for this prefix.
        installs = [
            record for record in by_name.get("fib_mutation", ())
            if cause_time <= record["t"] <= limit
            and _overlaps(record["attrs"].get("prefix"), loop_prefix)
        ]
    else:
        installs = [
            record for record in by_name.get("igp_fib_install", ())
            if cause_time <= record["t"] <= limit
        ]
    lifecycle.fib_installs = len(installs)
    if installs:
        lifecycle.fib_converged_at = max(r["t"] for r in installs)
