"""Bounded windowed time-series recorder for live monitoring.

The scrape endpoint (:mod:`repro.obs.server`) exposes *current* counter
values; an operator also wants *rates and windows* — "what share of this
minute's traffic was looping?" is the paper's Sec. VI question asked
live.  :class:`WindowedRecorder` answers it without Prometheus: it keeps
per-second and per-minute event counts in bounded ring-buffer bucket
series (the :class:`~repro.stats.timeseries.BucketSeries` semantics,
with a capacity cap), plus a bounded log of emitted loops and a
windowed TTL-delta distribution.

Everything is timestamp-driven in *trace time* — the recorder never
reads a wall clock, so replaying a recorded pcap produces exactly the
windows a live capture would have produced.  Sampling of registry
counters happens on window boundaries (the caller decides when), never
per packet; per-record bookkeeping is two dict increments.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any

from repro.stats.timeseries import BucketSeries, SeriesError

#: Default ring capacities: three hours of minutes, ten minutes of
#: seconds — enough for every Sec. VI window and the dashboard panels.
DEFAULT_MINUTE_CAPACITY = 180
DEFAULT_SECOND_CAPACITY = 600
DEFAULT_MAX_LOOPS = 1000
DEFAULT_MAX_SAMPLES = 20_000


class BoundedBucketSeries(BucketSeries):
    """A :class:`BucketSeries` that keeps only the newest ``capacity``
    buckets — a ring buffer over time windows.

    Pruning drops the *oldest* bucket ids, so long-running feeds hold
    bounded state while every recent-window query (ratios, rates,
    dashboard panels) behaves exactly like the unbounded series.  A
    min-heap of live bucket ids makes pruning O(log capacity) per new
    bucket — adds to an existing bucket touch no heap at all, so
    per-replica feeds stay cheap even once the ring is full.
    """

    def __init__(self, width: float, capacity: int) -> None:
        if capacity < 1:
            raise SeriesError(f"capacity must be >= 1: {capacity}")
        super().__init__(width=width)
        self.capacity = capacity
        self._order: list[int] = []

    def add(self, time: float, amount: float = 1.0) -> None:
        bucket = int(time // self.width)
        counts = self.counts
        if bucket in counts:
            counts[bucket] += amount
            return
        counts[bucket] = amount
        # Buckets leave `counts` only through this pruning, so the heap
        # top is always a live bucket — no lazy-deletion sweep needed.
        heapq.heappush(self._order, bucket)
        if len(counts) > self.capacity:
            del counts[heapq.heappop(self._order)]

    def latest_bucket(self) -> int | None:
        return max(self.counts) if self.counts else None


class WindowedRecorder:
    """Per-second and per-minute windows over a live record feed.

    Feed it raw observations (:meth:`observe_record`,
    :meth:`observe_loop`) and sample registry counters on window
    boundaries (:meth:`sample_counters`); query windows, ratios, and a
    JSON-ready snapshot at any time.
    """

    def __init__(
        self,
        minute_capacity: int = DEFAULT_MINUTE_CAPACITY,
        second_capacity: int = DEFAULT_SECOND_CAPACITY,
        max_loops: int = DEFAULT_MAX_LOOPS,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ) -> None:
        self.minute_records = BoundedBucketSeries(60.0, minute_capacity)
        self.second_records = BoundedBucketSeries(1.0, second_capacity)
        #: Replicas of detected loops, bucketed by replica timestamp —
        #: the numerator of the Sec. VI looped-share ratio.
        self.minute_looped = BoundedBucketSeries(60.0, minute_capacity)
        self.second_looped = BoundedBucketSeries(1.0, second_capacity)
        #: Loop count per minute, bucketed by loop end (emission) time.
        self.minute_loops = BoundedBucketSeries(60.0, minute_capacity)
        self.loops: deque[dict[str, Any]] = deque(maxlen=max_loops)
        #: Bounded per-stream samples for the paper's CDF panels
        #: (Fig. 3 sizes, Fig. 4 spacings, Fig. 8 durations).
        self.stream_sizes: deque[int] = deque(maxlen=max_samples)
        self.stream_durations: deque[float] = deque(maxlen=max_samples)
        self.replica_spacings: deque[float] = deque(maxlen=max_samples)
        #: TTL-delta counts: cumulative, and per recent minute for the
        #: distribution-shift alert.
        self.ttl_delta_total: dict[int, int] = {}
        self._ttl_delta_minutes: dict[int, dict[int, int]] = {}
        self._minute_capacity = minute_capacity
        #: Per-minute deltas of sampled registry counters, keyed by
        #: series id.
        self.counter_deltas: dict[str, BoundedBucketSeries] = {}
        self._last_counter_values: dict[str, float] = {}
        self.now = float("-inf")
        self.records = 0

    # -- feeding ---------------------------------------------------------------

    def observe_record(self, timestamp: float) -> None:
        """Count one captured record (any record, looping or not)."""
        self.observe_records(timestamp, 1)

    def observe_records(self, timestamp: float, count: int) -> None:
        """Count ``count`` records in ``timestamp``'s windows at once —
        the bulk entry point window-boundary sampling feeds."""
        self.records += count
        if timestamp > self.now:
            self.now = timestamp
        self.minute_records.add(timestamp, count)
        self.second_records.add(timestamp, count)

    def observe_loop(self, loop) -> None:
        """Record an emitted :class:`~repro.core.merge.RoutingLoop`:
        the loop row, its replicas into the looped series, and its
        TTL-delta into the windowed distribution."""
        self.minute_loops.add(loop.end)
        # Replicas cluster into a handful of windows per loop, so
        # aggregate locally and touch the bucket series once per
        # (window, loop) instead of once per replica.
        minute_counts: dict[int, int] = {}
        second_counts: dict[int, int] = {}
        for stream in loop.streams:
            self.stream_sizes.append(len(stream.replicas))
            self.stream_durations.append(stream.end - stream.start)
            previous = None
            for replica in stream.replicas:
                timestamp = replica.timestamp
                second = int(timestamp)
                second_counts[second] = second_counts.get(second, 0) + 1
                minute = second // 60
                minute_counts[minute] = minute_counts.get(minute, 0) + 1
                if previous is not None:
                    self.replica_spacings.append(timestamp - previous)
                previous = timestamp
        for minute, count in minute_counts.items():
            self.minute_looped.add(minute * 60.0, count)
        for second, count in second_counts.items():
            self.second_looped.add(float(second), count)
        delta = loop.ttl_delta
        self.ttl_delta_total[delta] = self.ttl_delta_total.get(delta, 0) + 1
        minute = int(loop.end // 60.0)
        per_minute = self._ttl_delta_minutes.setdefault(minute, {})
        per_minute[delta] = per_minute.get(delta, 0) + 1
        if len(self._ttl_delta_minutes) > self._minute_capacity:
            for bucket in sorted(
                self._ttl_delta_minutes
            )[:-self._minute_capacity]:
                del self._ttl_delta_minutes[bucket]
        self.loops.append({
            "prefix": str(loop.prefix),
            "start": loop.start,
            "end": loop.end,
            "duration": loop.duration,
            "streams": loop.stream_count,
            "replicas": loop.replica_count,
            "ttl_delta": delta,
        })

    def sample_counters(self, registry) -> None:
        """Sample registry counters into per-minute delta series.

        Call on window boundaries (the live monitor does); each call
        banks the growth since the previous sample into the current
        minute bucket, so ``counter_deltas[name]`` reads as a rate
        series without a Prometheus server doing the differencing.
        """
        if self.now == float("-inf"):
            return
        snapshot = registry.snapshot()
        for name, value in snapshot["counters"].items():
            previous = self._last_counter_values.get(name, 0.0)
            delta = value - previous
            self._last_counter_values[name] = value
            if delta > 0:
                self.counter_deltas.setdefault(
                    name,
                    BoundedBucketSeries(60.0, self._minute_capacity),
                ).add(self.now, delta)

    # -- queries ---------------------------------------------------------------

    def looped_share(self, minute: int) -> float | None:
        """Looped replicas as a share of all records in ``minute``
        (None when the minute saw no traffic — idle windows never
        divide by zero)."""
        total = self.minute_records.get(minute)
        if total <= 0:
            return None
        return self.minute_looped.get(minute) / total

    def looped_share_series(self) -> dict[int, float]:
        """Per-minute looped-traffic share — the Sec. VI panel series."""
        return self.minute_looped.ratio_series(self.minute_records)

    def peak_looped_share(self) -> float:
        return self.minute_looped.max_ratio(self.minute_records)

    def ttl_delta_window(self, minutes: int = 5) -> dict[int, int]:
        """TTL-delta counts over the trailing ``minutes`` windows."""
        if self.now == float("-inf"):
            return {}
        horizon = int(self.now // 60.0) - minutes
        out: dict[int, int] = {}
        for minute, counts in self._ttl_delta_minutes.items():
            if minute > horizon:
                for delta, count in counts.items():
                    out[delta] = out.get(delta, 0) + count
        return out

    def minute_rows(self, last: int | None = None) -> list[dict[str, Any]]:
        """Chronological per-minute rows for the dashboard/``/state``:
        records, looped replicas, loops closed, looped share."""
        buckets = self.minute_records.buckets
        if last is not None:
            buckets = buckets[-last:]
        rows = []
        for bucket in buckets:
            records = self.minute_records.get(bucket)
            looped = self.minute_looped.get(bucket)
            rows.append({
                "minute": bucket,
                "t0": bucket * 60.0,
                "records": records,
                "looped": looped,
                "loops": self.minute_loops.get(bucket),
                "share": looped / records if records > 0 else 0.0,
            })
        return rows

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of the recorder for ``/state`` and the
        dashboard renderer."""
        return {
            "now": None if self.now == float("-inf") else self.now,
            "records": self.records,
            "minutes": self.minute_rows(),
            "loops": list(self.loops),
            "peak_looped_share": self.peak_looped_share(),
            "ttl_delta_total": {
                str(delta): count
                for delta, count in sorted(self.ttl_delta_total.items())
            },
        }
