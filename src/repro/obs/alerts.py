"""Declarative alerting over the windowed recorder.

The paper's Sec. VI is an operator's case for caring about loops live:
they contribute up to 9% of a minute's packet loss and 25–300 ms of
extra delay.  :class:`AlertEngine` turns those findings into default
alert rules evaluated on window boundaries:

* ``looped_loss_share`` — a closed minute's looped-traffic share crossed
  the Sec. VI ceiling (9% by default);
* ``loop_duration_tail`` — a loop outlived the Fig. 8/9 tail (90% of
  loops resolve under 10 s; one that doesn't is convergence gone wrong
  or a persistent loop forming);
* ``ttl_delta_shift`` — the recent TTL-delta distribution moved away
  from the Fig. 2 baseline (deltas 2–3 dominate healthy transient
  loops; a shift means new loop geometry, e.g. longer micro-loop
  cycles);
* ``replica_rate_spike`` — looped-replica rate in the latest closed
  minute spiked against the trailing mean.

Rules are plain data (:class:`AlertRule` wraps a ``check`` callable), so
deployments add their own without touching the engine.  Firing is
deduplicated per ``(rule, key)`` with a cooldown; every fired alert goes
through the ``repro.alerts`` logger, is recorded as a trace event, and
lands in the bounded history the dashboard and ``/state`` expose.

Long-running deployments (the fleet daemon) can opt into **hysteresis**
instead: construct the engine with a :class:`HysteresisConfig` and each
rule becomes a two-state condition — it must breach on ``fire_after``
*consecutive* evaluations before one alert fires, and then recover on
``clear_after`` consecutive evaluations before the condition clears and
re-arms.  This replaces the per-key infinite-cooldown dedup (which is
right for one-shot trace analysis, where every key names an immutable
fact) with the flap-suppression an always-on monitor needs.

Evaluation, like the recorder, runs on **trace time** — replaying a
pcap fires exactly the alerts a live capture would have fired.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.obs.log import get_logger
from repro.obs.recorder import WindowedRecorder
from repro.obs.tracing import NULL_TRACER

#: Sec. VI: "routing loops contribute up to 9% of per-minute loss".
DEFAULT_LOSS_SHARE_THRESHOLD = 0.09
#: Figs. 8/9: ~90% of streams/loops last under 10 seconds.
DEFAULT_DURATION_TAIL_SECONDS = 10.0
#: Fig. 2: TTL deltas 2 and 3 dominate (two- and three-router loops).
DEFAULT_TTL_DELTA_BASELINE: dict[int, float] = {2: 0.62, 3: 0.28, 4: 0.06,
                                                5: 0.04}
DEFAULT_TTL_SHIFT_DISTANCE = 0.35
DEFAULT_SPIKE_FACTOR = 4.0


@dataclass(frozen=True)
class Finding:
    """One rule hit, before dedup: the dedup key plus evidence."""

    key: str
    value: float
    threshold: float
    message: str


RuleCheck = Callable[[WindowedRecorder, float], Iterable[Finding]]


@dataclass(frozen=True)
class AlertRule:
    """A named condition over the recorder state.

    ``cooldown`` is the minimum trace time between re-fires of the
    *same* finding key.  The default (infinity) fires each key exactly
    once — right for keys naming immutable facts (a closed minute, an
    emitted loop).  Rules whose key names a recurring condition set a
    finite cooldown to re-notify while it persists.
    """

    name: str
    description: str
    check: RuleCheck
    severity: str = "warning"  # "warning" | "critical"
    cooldown: float = float("inf")


@dataclass(frozen=True)
class Alert:
    """One fired alert (post-dedup)."""

    rule: str
    severity: str
    time: float
    key: str
    value: float
    threshold: float
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "time": self.time,
            "key": self.key,
            "value": self.value,
            "threshold": self.threshold,
            "message": self.message,
        }


def _closed_minutes(recorder: WindowedRecorder,
                    now: float) -> Iterator[int]:
    """Minute buckets that can no longer grow (strictly before now's)."""
    current = int(now // 60.0)
    for bucket in recorder.minute_records.buckets:
        if bucket < current:
            yield bucket


def looped_loss_share_rule(
    threshold: float = DEFAULT_LOSS_SHARE_THRESHOLD,
) -> AlertRule:
    def check(recorder: WindowedRecorder,
              now: float) -> Iterator[Finding]:
        for minute in _closed_minutes(recorder, now):
            share = recorder.looped_share(minute)
            if share is not None and share > threshold:
                yield Finding(
                    key=f"minute:{minute}",
                    value=share,
                    threshold=threshold,
                    message=(
                        f"looped traffic is {share:.1%} of minute "
                        f"{minute} (> {threshold:.0%}, the Sec. VI "
                        f"per-minute loss ceiling)"
                    ),
                )

    return AlertRule(
        name="looped_loss_share",
        description="Looped share of a minute window above the Sec. VI "
                    "ceiling",
        check=check,
        severity="critical",
    )


def loop_duration_tail_rule(
    threshold: float = DEFAULT_DURATION_TAIL_SECONDS,
) -> AlertRule:
    def check(recorder: WindowedRecorder,
              now: float) -> Iterator[Finding]:
        for loop in recorder.loops:
            if loop["duration"] > threshold:
                yield Finding(
                    key=f"{loop['prefix']}@{loop['start']:.3f}",
                    value=loop["duration"],
                    threshold=threshold,
                    message=(
                        f"loop on {loop['prefix']} lived "
                        f"{loop['duration']:.1f}s (> {threshold:.0f}s, "
                        f"the Fig. 8/9 tail: ~90% of loops resolve "
                        f"faster)"
                    ),
                )

    return AlertRule(
        name="loop_duration_tail",
        description="A loop outlived the Fig. 8/9 duration tail",
        check=check,
        severity="warning",
    )


def total_variation(p: dict[int, float], q: dict[int, float]) -> float:
    """Total-variation distance between two discrete distributions
    (0 = identical, 1 = disjoint)."""
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def ttl_delta_shift_rule(
    baseline: dict[int, float] | None = None,
    threshold: float = DEFAULT_TTL_SHIFT_DISTANCE,
    window_minutes: int = 5,
    min_loops: int = 5,
) -> AlertRule:
    base = dict(baseline or DEFAULT_TTL_DELTA_BASELINE)
    total = sum(base.values())
    base = {k: v / total for k, v in base.items()}

    def check(recorder: WindowedRecorder,
              now: float) -> Iterator[Finding]:
        window = recorder.ttl_delta_window(window_minutes)
        count = sum(window.values())
        if count < min_loops:
            return
        observed = {k: v / count for k, v in window.items()}
        distance = total_variation(observed, base)
        if distance > threshold:
            dominant = max(observed, key=lambda k: observed[k])
            # One key per whole window, so a persistent shift fires
            # once per window_minutes rather than every minute.
            yield Finding(
                key=f"window:{int(now // 60.0) // window_minutes}",
                value=distance,
                threshold=threshold,
                message=(
                    f"TTL-delta distribution drifted {distance:.2f} "
                    f"(TV) from the Fig. 2 baseline over the last "
                    f"{window_minutes} min; dominant delta now "
                    f"{dominant} ({observed[dominant]:.0%} of "
                    f"{count} loops)"
                ),
            )

    return AlertRule(
        name="ttl_delta_shift",
        description="Recent TTL-delta distribution shifted from the "
                    "Fig. 2 baseline",
        check=check,
        severity="warning",
    )


def replica_rate_spike_rule(
    factor: float = DEFAULT_SPIKE_FACTOR,
    min_history: int = 3,
    min_replicas: float = 20.0,
) -> AlertRule:
    def check(recorder: WindowedRecorder,
              now: float) -> Iterator[Finding]:
        closed = list(_closed_minutes(recorder, now))
        if len(closed) < min_history + 1:
            return
        latest = closed[-1]
        history = closed[:-1][-10:]
        mean = (sum(recorder.minute_looped.get(b) for b in history)
                / len(history))
        current = recorder.minute_looped.get(latest)
        if current >= min_replicas and current > factor * max(mean, 1.0):
            yield Finding(
                key=f"minute:{latest}",
                value=current,
                threshold=factor * max(mean, 1.0),
                message=(
                    f"looped-replica rate spiked to {current:.0f}/min "
                    f"in minute {latest} ({factor:.0f}x over the "
                    f"trailing mean of {mean:.1f}/min)"
                ),
            )

    return AlertRule(
        name="replica_rate_spike",
        description="Looped-replica rate spiked against the trailing "
                    "mean",
        check=check,
        severity="warning",
    )


def default_rules(
    loss_share_threshold: float = DEFAULT_LOSS_SHARE_THRESHOLD,
    duration_tail_seconds: float = DEFAULT_DURATION_TAIL_SECONDS,
    ttl_baseline: dict[int, float] | None = None,
) -> list[AlertRule]:
    """The paper-grounded rule set, with the headline thresholds
    overridable per deployment."""
    return [
        looped_loss_share_rule(loss_share_threshold),
        loop_duration_tail_rule(duration_tail_seconds),
        ttl_delta_shift_rule(ttl_baseline),
        replica_rate_spike_rule(),
    ]


@dataclass(frozen=True)
class HysteresisConfig:
    """Consecutive-evaluation counters for flap suppression.

    ``fire_after`` breaching evaluations in a row arm-and-fire a rule;
    ``clear_after`` clean evaluations in a row clear it again (one clean
    evaluation resets the breach counter of a rule that has not fired
    yet).  Both counts are exact: a rule with ``fire_after=3`` fires on
    the third consecutive breach, never the second or fourth.
    """

    fire_after: int = 3
    clear_after: int = 2

    def __post_init__(self) -> None:
        if self.fire_after < 1:
            raise ValueError(f"fire_after must be >= 1: {self.fire_after}")
        if self.clear_after < 1:
            raise ValueError(
                f"clear_after must be >= 1: {self.clear_after}"
            )


@dataclass
class _RuleState:
    """Per-rule hysteresis counters (engine-internal)."""

    breaches: int = 0
    recoveries: int = 0
    active: bool = False
    last_alert: Alert | None = None


@dataclass
class AlertEngine:
    """Evaluates rules, dedups, and fans fired alerts out to the logger,
    the tracer, and a bounded history.

    With ``hysteresis`` set, per-key dedup is replaced by per-rule
    consecutive-breach/recovery counting (see module docstring).
    """

    rules: list[AlertRule] = field(default_factory=default_rules)
    tracer: Any = NULL_TRACER
    max_history: int = 500
    hysteresis: HysteresisConfig | None = None

    def __post_init__(self) -> None:
        self.history: deque[Alert] = deque(maxlen=self.max_history)
        self.fired_total = 0
        self.cleared_total = 0
        self._last_fired: dict[tuple[str, str], float] = {}
        self._rule_states: dict[str, _RuleState] = {}
        self._logger = get_logger("alerts")

    def evaluate(self, recorder: WindowedRecorder,
                 now: float) -> list[Alert]:
        """Run every rule; returns (and records) newly fired alerts."""
        if self.hysteresis is not None:
            return self._evaluate_hysteresis(recorder, now)
        fired: list[Alert] = []
        for rule in self.rules:
            for finding in rule.check(recorder, now):
                dedup = (rule.name, finding.key)
                last = self._last_fired.get(dedup)
                if last is not None and (
                    rule.cooldown == float("inf")
                    or now - last < rule.cooldown
                ):
                    continue
                self._last_fired[dedup] = now
                fired.append(self._fire(rule, finding, now))
        return fired

    def _fire(self, rule: AlertRule, finding: Finding,
              now: float) -> Alert:
        alert = Alert(
            rule=rule.name,
            severity=rule.severity,
            time=now,
            key=finding.key,
            value=finding.value,
            threshold=finding.threshold,
            message=finding.message,
        )
        self.history.append(alert)
        self.fired_total += 1
        self._logger.warning("alert [%s] %s: %s", alert.severity,
                             alert.rule, alert.message)
        self.tracer.event(
            "alert", time=now, rule=alert.rule,
            severity=alert.severity, key=alert.key,
            value=alert.value, threshold=alert.threshold,
            message=alert.message,
        )
        return alert

    def _evaluate_hysteresis(self, recorder: WindowedRecorder,
                             now: float) -> list[Alert]:
        config = self.hysteresis
        fired: list[Alert] = []
        for rule in self.rules:
            state = self._rule_states.setdefault(rule.name, _RuleState())
            findings = list(rule.check(recorder, now))
            if findings:
                state.recoveries = 0
                state.breaches += 1
                if (not state.active
                        and state.breaches >= config.fire_after):
                    state.active = True
                    alert = self._fire(rule, findings[-1], now)
                    state.last_alert = alert
                    fired.append(alert)
            elif state.active:
                state.recoveries += 1
                if state.recoveries >= config.clear_after:
                    state.active = False
                    state.breaches = 0
                    state.recoveries = 0
                    self.cleared_total += 1
                    self._logger.info(
                        "alert cleared [%s] %s after %d clean "
                        "evaluations", rule.severity, rule.name,
                        config.clear_after,
                    )
                    self.tracer.event("alert_cleared", time=now,
                                      rule=rule.name)
            else:
                state.breaches = 0
        return fired

    def active_rules(self) -> list[dict[str, Any]]:
        """Currently firing rules under hysteresis (empty without it):
        rule name plus the alert that armed it."""
        out = []
        for name, state in sorted(self._rule_states.items()):
            if state.active:
                out.append({
                    "rule": name,
                    "since": (state.last_alert.time
                              if state.last_alert else None),
                    "alert": (state.last_alert.to_dict()
                              if state.last_alert else None),
                })
        return out

    def register_metrics(self, registry) -> None:
        """Publish alert counts via a weakly-held pull collector."""
        registry.register_collector(self._publish_metrics)

    def _publish_metrics(self, registry) -> None:
        registry.counter(
            "alerts_fired_total", "Alerts fired (post-dedup)"
        ).set(self.fired_total)
        registry.counter(
            "alerts_cleared_total",
            "Hysteresis alerts cleared after recovery",
        ).set(self.cleared_total)
        by_rule: dict[str, int] = {}
        for alert in self.history:
            by_rule[alert.rule] = by_rule.get(alert.rule, 0) + 1
        for rule in self.rules:
            registry.counter(
                "alerts_fired_by_rule_total",
                "Alerts in the retained history, per rule",
                labels={"rule": rule.name},
            ).set(by_rule.get(rule.name, 0))

    def snapshot(self) -> list[dict[str, Any]]:
        """JSON-ready alert history, oldest first."""
        return [alert.to_dict() for alert in self.history]
