"""Stdlib HTTP scrape endpoint for live monitoring.

:class:`MonitorServer` serves three routes from a background thread
while the detection loop runs in the foreground:

* ``GET /metrics`` — Prometheus text exposition from the monitor's
  registry (``text/plain; version=0.0.4``);
* ``GET /healthz`` — liveness JSON: records seen, finished flag,
  alert count;
* ``GET /state`` — the full :meth:`~repro.obs.live.LiveMonitor.state`
  snapshot as JSON: recorder windows, alert history, and any registered
  detector state sources (active replica streams, open loops,
  lifecycle attributions).

Built entirely on :mod:`http.server` — no dependencies.  The server
binds on construction (so ``port=0`` resolves to a real ephemeral port
before any scrape), serves on a daemon thread via
:class:`~http.server.ThreadingHTTPServer` (each request gets its own
handler thread; state reads are lock-consistent snapshots from the
monitor), and shuts down cleanly as a context manager.  Request logging
goes through the ``repro.http`` logger at DEBUG, not stderr.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.obs.live import LiveMonitor
from repro.obs.log import get_logger

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


#: A client tearing down its socket mid-response surfaces as either of
#: these depending on how far the kernel got; both mean "stop writing".
CLIENT_GONE = (BrokenPipeError, ConnectionResetError)


def bind_http_server(host: str, port: int,
                     handler: type) -> ThreadingHTTPServer:
    """Bind a :class:`ThreadingHTTPServer`, turning bind failures into a
    single clear log line + :class:`OSError` naming the address instead
    of a raw ``[Errno 98]`` traceback.

    ``port=0`` asks the kernel for an ephemeral port; the chosen port is
    readable from the returned server's ``server_address`` (and is
    reported by the ``/healthz`` routes and the startup log line).
    """
    try:
        httpd = ThreadingHTTPServer((host, port), handler)
    except OSError as exc:
        message = (
            f"cannot bind {host}:{port}: {exc.strerror or exc} "
            f"(is another server already listening? pass port 0 "
            f"to auto-assign)"
        )
        get_logger("http").error(message)
        raise OSError(exc.errno, message) from exc
    httpd.daemon_threads = True
    return httpd


class JSONRequestHandler(BaseHTTPRequestHandler):
    """Shared base for the monitoring endpoints: framed responses with
    ``Content-Length``, JSON helpers, and quiet client disconnects.

    Mid-scrape disconnects (a curl killed between header and body, a
    Prometheus scrape timeout) raise :class:`BrokenPipeError` or
    :class:`ConnectionResetError` from the socket write; :meth:`_send`
    swallows both and logs at DEBUG, so they never surface tracebacks in
    the ``repro.http`` logger at default level.
    """

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
        except CLIENT_GONE:
            self.close_connection = True
            get_logger("http").debug(
                "%s disconnected mid-response", self.address_string()
            )

    def _send_json(self, status: int, body: Any) -> None:
        self._send(status, "application/json",
                   json.dumps(body, sort_keys=True))

    def log_message(self, format: str, *args: Any) -> None:
        get_logger("http").debug("%s %s", self.address_string(),
                                 format % args)

    def handle(self) -> None:
        # The base class handles requests straight off the socket; a
        # peer resetting during the read path (before any _send) must be
        # just as quiet as one resetting mid-write.
        try:
            super().handle()
        except CLIENT_GONE:
            self.close_connection = True
            get_logger("http").debug(
                "%s reset the connection", self.address_string()
            )


class _Handler(JSONRequestHandler):
    # Set per server class in MonitorServer.__init__.
    monitor: LiveMonitor
    dashboard_renderer = None

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            self._send(200, PROMETHEUS_CONTENT_TYPE,
                       self.monitor.render_prometheus())
        elif path == "/healthz":
            self._send_json(200, self._health())
        elif path == "/state":
            self._send_json(200, self.monitor.state())
        elif path == "/" and self.dashboard_renderer is not None:
            self._send(200, "text/html; charset=utf-8",
                       self.dashboard_renderer())
        else:
            self._send_json(404, {"error": "not found", "path": path})

    def _health(self) -> dict[str, Any]:
        with self.monitor._lock:
            recorder = self.monitor.recorder
            return {
                "status": "ok",
                "records": recorder.records,
                "loops": len(recorder.loops),
                "alerts": len(self.monitor.alerts.history),
                "finished": self.monitor.finished,
                "port": self.server.server_address[1],
            }


class MonitorServer:
    """Background-thread HTTP server over a :class:`LiveMonitor`.

    >>> with MonitorServer(monitor, port=0) as server:
    ...     print(server.url)          # http://127.0.0.1:<ephemeral>
    ...     run_detection()            # foreground; scrapes serve live
    """

    def __init__(self, monitor: LiveMonitor, host: str = "127.0.0.1",
                 port: int = 9464, dashboard_renderer=None) -> None:
        self.monitor = monitor
        handler = type("_BoundHandler", (_Handler,), {
            "monitor": monitor,
            "dashboard_renderer": staticmethod(dashboard_renderer)
            if dashboard_renderer is not None else None,
        })
        self._httpd = bind_http_server(host, port, handler)
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the real one)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MonitorServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-monitor-http",
            daemon=True,
        )
        self._thread.start()
        get_logger("http").info("monitoring endpoint at %s", self.url)
        return self

    def stop(self) -> None:
        # shutdown() blocks until serve_forever() acknowledges, so it
        # must only run when the serving thread actually started —
        # stop() on a constructed-but-never-started server (or a second
        # stop()) just closes the socket.
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MonitorServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
