"""The shared ``repro`` logger.

The CLI historically wrote ``error: ...`` lines straight to stderr;
tests (and muscle memory) assert on that lowercase prefix.  This module
keeps the exact output shape while routing everything through
:mod:`logging`, so ``--log-level`` can reveal debug/info chatter and
library consumers can attach their own handlers.
"""

from __future__ import annotations

import logging
import sys

#: Root logger name for the whole package.
ROOT = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class _LowercaseLevelFormatter(logging.Formatter):
    """Format as ``error: message`` (lowercase level prefix)."""

    def format(self, record: logging.LogRecord) -> str:
        message = record.getMessage()
        if record.exc_info and record.exc_text is None:
            record.exc_text = self.formatException(record.exc_info)
        if record.exc_text:
            message = f"{message}\n{record.exc_text}"
        return f"{record.levelname.lower()}: {message}"


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    return logging.getLogger(f"{ROOT}.{name}" if name else ROOT)


def configure_logging(level: str = "warning",
                      stream=None) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` logger (idempotent).

    Reconfiguring replaces the previously installed handler rather than
    stacking a second one, so repeated CLI invocations in one process
    (tests!) don't multiply output lines.
    """
    try:
        resolved = _LEVELS[level.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; "
            f"choose from {', '.join(_LEVELS)}"
        ) from None
    logger = get_logger()
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(_LowercaseLevelFormatter())
    for existing in list(logger.handlers):
        if getattr(existing, "_repro_handler", False):
            logger.removeHandler(existing)
    handler._repro_handler = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.setLevel(resolved)
    logger.propagate = False
    return logger
