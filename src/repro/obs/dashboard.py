"""Loop dashboard: the paper's figures rendered from live monitor state.

Two renderers over one :class:`~repro.obs.live.LiveMonitor`:

* :func:`render_ascii` — terminal panels built on
  :mod:`repro.stats.ascii_plot`, for ``repro monitor`` summaries and CI
  logs;
* :func:`render_html` — a fully self-contained HTML page (inline CSS +
  SVG, zero external assets or script) served at ``/`` by the monitor
  server and written by ``--dashboard-out``.

Both reproduce the paper's panels from whatever the bounded recorder
currently holds: Fig. 2 (TTL-delta distribution), Fig. 3 (stream size
CDF), Fig. 4 (replica spacing CDF), Fig. 8 (stream duration CDF),
Fig. 9 (loop duration CDF), plus the Sec. VI looped-share-per-minute
series annotated with fired alerts, stat tiles, and the alert history.

The HTML follows the reference dataviz palette: single-hue series (no
legend needed — every chart is one series), ink/chrome tokens as CSS
custom properties with a dark mode selected for the dark surface, status
colors only on alert severities (always icon + label, never color
alone), thin marks with rounded data-ends, and native ``<title>``
tooltips on every mark.  Tables under the charts carry the same data as
text.
"""

from __future__ import annotations

import html
from typing import Any, Mapping, Sequence

from repro.obs.live import LiveMonitor
from repro.stats.ascii_plot import bar_chart, cdf_plot
from repro.stats.cdf import EmpiricalCdf

#: Threshold hairlines drawn on the panels (the alert defaults).
LOSS_SHARE_LINE = 0.09
DURATION_TAIL_LINE = 10.0


# -- ASCII -----------------------------------------------------------------------


def render_ascii(monitor: LiveMonitor, width: int = 64) -> str:
    """The dashboard as terminal text."""
    state = monitor.state()
    samples = monitor.samples()
    recorder = state["recorder"]
    parts: list[str] = []
    parts.append("== routing-loop live monitor ==")
    parts.append(
        f"records {recorder['records']}"
        f" | loops {len(recorder['loops'])}"
        f" | peak looped share {recorder['peak_looped_share']:.2%}"
        f" | alerts {len(state['alerts'])}"
    )

    share = {
        row["minute"]: round(row["share"], 4)
        for row in recorder["minutes"]
    }
    if share:
        parts.append("")
        parts.append(bar_chart(
            share, title="looped share per minute (Sec. VI)",
            width=width - 14,
        ))

    ttl = {int(k): v for k, v in recorder["ttl_delta_total"].items()}
    if ttl:
        parts.append("")
        parts.append(bar_chart(
            ttl, title="TTL delta distribution (Fig. 2)",
            width=width - 14,
        ))

    for key, title, log_x in (
        ("stream_sizes", "stream size CDF, replicas (Fig. 3)", False),
        ("replica_spacings", "replica spacing CDF, seconds (Fig. 4)", True),
        ("stream_durations", "stream duration CDF, seconds (Fig. 8)", True),
        ("loop_durations", "loop duration CDF, seconds (Fig. 9)", True),
    ):
        values = samples[key]
        if values:
            parts.append("")
            parts.append(cdf_plot(
                EmpiricalCdf.from_samples(values), title=title,
                width=width, log_x=log_x and min(values) > 0,
            ))

    perf = state.get("perf")
    if perf and perf.get("stages"):
        parts.append("")
        parts.append("pipeline stages:")
        for stage in perf["stages"]:
            line = (
                f"  {stage['name']}: {stage['seconds']:.3f}s"
                f" over {stage['count']} span(s)"
            )
            if stage["records"]:
                line += f", {stage['records_per_sec']:,.0f} records/s"
            parts.append(line)
        for queue, depth in sorted(perf.get("queues", {}).items()):
            parts.append(f"  queue {queue}: depth {depth:g}")

    parts.append("")
    if state["alerts"]:
        parts.append("alerts:")
        for alert in state["alerts"]:
            parts.append(
                f"  t={alert['time']:.1f} [{alert['severity']}] "
                f"{alert['rule']}: {alert['message']}"
            )
    else:
        parts.append("alerts: none fired")
    return "\n".join(parts) + "\n"


# -- SVG helpers -----------------------------------------------------------------

_VIEW_W = 560
_VIEW_H = 230
_PAD_L, _PAD_R, _PAD_T, _PAD_B = 46, 16, 14, 34
_PLOT_W = _VIEW_W - _PAD_L - _PAD_R
_PLOT_H = _VIEW_H - _PAD_T - _PAD_B


def _esc(text: Any) -> str:
    return html.escape(str(text), quote=True)


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.2g}"
    return f"{value:.3g}"


def _x_of(value: float, lo: float, hi: float) -> float:
    span = hi - lo if hi > lo else 1.0
    return _PAD_L + (value - lo) / span * _PLOT_W


def _y_of(value: float, lo: float, hi: float) -> float:
    span = hi - lo if hi > lo else 1.0
    return _PAD_T + _PLOT_H - (value - lo) / span * _PLOT_H


def _grid_and_axes(y_ticks: Sequence[tuple[float, str]],
                   x_ticks: Sequence[tuple[float, str]]) -> list[str]:
    """Hairline grid + muted tick labels; recessive by construction."""
    out = []
    for y, label in y_ticks:
        out.append(
            f'<line class="grid" x1="{_PAD_L}" y1="{y:.1f}"'
            f' x2="{_VIEW_W - _PAD_R}" y2="{y:.1f}"/>'
        )
        out.append(
            f'<text class="tick" x="{_PAD_L - 6}" y="{y + 3.5:.1f}"'
            f' text-anchor="end">{_esc(label)}</text>'
        )
    baseline_y = _PAD_T + _PLOT_H
    out.append(
        f'<line class="axis" x1="{_PAD_L}" y1="{baseline_y}"'
        f' x2="{_VIEW_W - _PAD_R}" y2="{baseline_y}"/>'
    )
    for x, label in x_ticks:
        out.append(
            f'<text class="tick" x="{x:.1f}" y="{baseline_y + 16}"'
            f' text-anchor="middle">{_esc(label)}</text>'
        )
    return out


def _svg(parts: Sequence[str], label: str) -> str:
    return (
        f'<svg viewBox="0 0 {_VIEW_W} {_VIEW_H}" role="img"'
        f' aria-label="{_esc(label)}">' + "".join(parts) + "</svg>"
    )


def _panel(title: str, note: str, body: str) -> str:
    return (
        '<section class="panel">'
        f"<h2>{_esc(title)}</h2>"
        f'<p class="note">{_esc(note)}</p>'
        f"{body}</section>"
    )


def _rounded_bar(x: float, y: float, w: float, h: float,
                 radius: float = 4.0) -> str:
    """A bar path with rounded *data ends* (top corners) anchored flat
    to the baseline."""
    r = min(radius, w / 2.0, h)
    bottom = y + h
    return (
        f"M {x:.1f} {bottom:.1f} L {x:.1f} {y + r:.1f} "
        f"Q {x:.1f} {y:.1f} {x + r:.1f} {y:.1f} "
        f"L {x + w - r:.1f} {y:.1f} "
        f"Q {x + w:.1f} {y:.1f} {x + w:.1f} {y + r:.1f} "
        f"L {x + w:.1f} {bottom:.1f} Z"
    )


def _cdf_svg(values: Sequence[float], x_label: str, label: str,
             marker: float | None = None,
             marker_label: str = "") -> str:
    """A single-series CDF step line with quartile gridlines."""
    if not values:
        return '<p class="note">no samples yet</p>'
    cdf = EmpiricalCdf.from_samples(values)
    lo, hi = cdf.min, cdf.max
    if marker is not None:
        hi = max(hi, marker)
        lo = min(lo, marker)
    if hi <= lo:
        hi = lo + 1.0

    pts: list[str] = []
    prev_y = None
    for x, y in cdf.points(max_points=160):
        px = _x_of(x, lo, hi)
        py = _y_of(y, 0.0, 1.0)
        if prev_y is not None:
            pts.append(f"{px:.1f},{prev_y:.1f}")  # step: over, then up
        pts.append(f"{px:.1f},{py:.1f}")
        prev_y = py
    y_ticks = [(_y_of(f, 0.0, 1.0), f"{f:.2f}")
               for f in (0.0, 0.25, 0.5, 0.75, 1.0)]
    x_ticks = [(_x_of(v, lo, hi), _fmt(v))
               for v in (lo, (lo + hi) / 2.0, hi)]
    parts = _grid_and_axes(y_ticks, x_ticks)
    if marker is not None:
        mx = _x_of(marker, lo, hi)
        parts.append(
            f'<line class="threshold" x1="{mx:.1f}" y1="{_PAD_T}"'
            f' x2="{mx:.1f}" y2="{_PAD_T + _PLOT_H}"/>'
        )
        parts.append(
            f'<text class="threshold-label" x="{mx + 5:.1f}"'
            f' y="{_PAD_T + 12}">{_esc(marker_label)}</text>'
        )
    parts.append(
        f'<polyline class="series-line" points="{" ".join(pts)}">'
        f"<title>{_esc(label)}: n={cdf.n}, median={_fmt(cdf.median)} "
        f"{_esc(x_label)}, p90={_fmt(cdf.quantile(0.9))}, "
        f"max={_fmt(cdf.max)}</title></polyline>"
    )
    parts.append(
        f'<text class="tick" x="{_VIEW_W - _PAD_R}"'
        f' y="{_VIEW_H - 4}" text-anchor="end">{_esc(x_label)}</text>'
    )
    return _svg(parts, label)


def _bars_svg(counts: Mapping[int, float], x_label: str,
              label: str) -> str:
    """A single-series vertical bar chart with a 2px surface gap."""
    if not counts:
        return '<p class="note">no samples yet</p>'
    items = sorted(counts.items())
    peak = max(v for _, v in items) or 1.0
    total = sum(v for _, v in items) or 1.0
    slot = _PLOT_W / len(items)
    bar_w = max(3.0, min(48.0, slot - 2.0))  # 2px gap between fills
    y_ticks = [(_y_of(f * peak, 0.0, peak), _fmt(f * peak))
               for f in (0.0, 0.5, 1.0)]
    parts = _grid_and_axes(y_ticks, [])
    baseline_y = _PAD_T + _PLOT_H
    for i, (key, value) in enumerate(items):
        h = value / peak * _PLOT_H
        x = _PAD_L + i * slot + (slot - bar_w) / 2.0
        y = baseline_y - h
        parts.append(
            f'<path class="series-fill" d="{_rounded_bar(x, y, bar_w, h)}">'
            f"<title>delta {key}: {value:g} loops "
            f"({value / total:.0%})</title></path>"
        )
        parts.append(
            f'<text class="tick" x="{x + bar_w / 2:.1f}"'
            f' y="{baseline_y + 16}" text-anchor="middle">{key}</text>'
        )
    parts.append(
        f'<text class="tick" x="{_VIEW_W - _PAD_R}"'
        f' y="{_VIEW_H - 4}" text-anchor="end">{_esc(x_label)}</text>'
    )
    return _svg(parts, label)


def _share_svg(minutes: Sequence[Mapping[str, Any]],
               alerts: Sequence[Mapping[str, Any]],
               threshold: float = LOSS_SHARE_LINE) -> str:
    """The Sec. VI panel: looped share per minute, threshold hairline,
    fired alerts as status-colored markers (icon in the table below)."""
    if not minutes:
        return '<p class="note">no traffic yet</p>'
    first = minutes[0]["minute"]
    last = max(minutes[-1]["minute"], first + 1)
    peak = max(max(row["share"] for row in minutes), threshold) * 1.15
    y_ticks = [(_y_of(f * peak, 0.0, peak), f"{f * peak:.0%}")
               for f in (0.0, 0.5, 1.0)]
    x_ticks = [
        (_x_of(first, first, last), f"min {first}"),
        (_x_of(last, first, last), f"min {minutes[-1]['minute']}"),
    ]
    parts = _grid_and_axes(y_ticks, x_ticks)

    ty = _y_of(threshold, 0.0, peak)
    parts.append(
        f'<line class="threshold" x1="{_PAD_L}" y1="{ty:.1f}"'
        f' x2="{_VIEW_W - _PAD_R}" y2="{ty:.1f}"/>'
    )
    parts.append(
        f'<text class="threshold-label" x="{_VIEW_W - _PAD_R - 4}"'
        f' y="{ty - 5:.1f}" text-anchor="end">'
        f"Sec. VI ceiling {threshold:.0%}</text>"
    )

    pts = []
    for row in minutes:
        px = _x_of(row["minute"], first, last)
        py = _y_of(row["share"], 0.0, peak)
        pts.append(f"{px:.1f},{py:.1f}")
    parts.append(
        f'<polyline class="series-line" points="{" ".join(pts)}"/>'
    )
    for row in minutes:
        px = _x_of(row["minute"], first, last)
        py = _y_of(row["share"], 0.0, peak)
        parts.append(
            f'<circle class="series-dot" cx="{px:.1f}" cy="{py:.1f}"'
            f' r="3"><title>minute {row["minute"]}: share '
            f'{row["share"]:.2%} ({row["looped"]:g} looped of '
            f'{row["records"]:g} records, {row["loops"]:g} loops)'
            f"</title></circle>"
        )

    for alert in alerts:
        minute = int(alert["time"] // 60.0)
        px = _x_of(min(max(minute, first), last), first, last)
        cls = ("marker-critical" if alert["severity"] == "critical"
               else "marker-warning")
        parts.append(
            f'<circle class="{cls}" cx="{px:.1f}" cy="{_PAD_T + 7}"'
            f' r="5"><title>[{_esc(alert["severity"])}] '
            f'{_esc(alert["rule"])}: {_esc(alert["message"])}'
            f"</title></circle>"
        )
    return _svg(parts, "looped traffic share per minute")


# -- HTML ------------------------------------------------------------------------

_STYLE = """
  .viz-root {
    color-scheme: light;
    --surface-1: #fcfcfb;
    --page: #f9f9f7;
    --text-primary: #0b0b0b;
    --text-secondary: #52514e;
    --text-muted: #898781;
    --grid: #e1e0d9;
    --axis: #c3c2b7;
    --border: rgba(11, 11, 11, 0.10);
    --series-1: #2a78d6;
    --status-good: #0ca30c;
    --status-warning: #fab219;
    --status-critical: #d03b3b;
    background: var(--page);
    color: var(--text-primary);
    font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
    margin: 0;
    padding: 20px;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --page: #0d0d0d;
      --text-primary: #ffffff;
      --text-secondary: #c3c2b7;
      --text-muted: #898781;
      --grid: #2c2c2a;
      --axis: #383835;
      --border: rgba(255, 255, 255, 0.10);
      --series-1: #3987e5;
    }
  }
  :root[data-theme="dark"] .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --grid: #2c2c2a;
    --axis: #383835;
    --border: rgba(255, 255, 255, 0.10);
    --series-1: #3987e5;
  }
  .viz-root h1 { font-size: 20px; margin: 0 0 2px; }
  .viz-root .subtitle { color: var(--text-secondary); margin: 0 0 18px;
                        font-size: 13px; }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 0 0 18px; }
  .tile { background: var(--surface-1); border: 1px solid var(--border);
          border-radius: 8px; padding: 12px 18px; min-width: 130px; }
  .tile .value { font-size: 26px; font-weight: 600; }
  .tile .label { font-size: 12px; color: var(--text-secondary); }
  .grid-2 { display: grid; gap: 14px;
            grid-template-columns: repeat(auto-fit, minmax(340px, 1fr)); }
  .panel { background: var(--surface-1); border: 1px solid var(--border);
           border-radius: 8px; padding: 14px 16px; }
  .panel h2 { font-size: 14px; margin: 0 0 2px; }
  .panel .note { font-size: 12px; color: var(--text-secondary);
                 margin: 0 0 8px; }
  .panel svg { width: 100%; height: auto; display: block; }
  svg .grid { stroke: var(--grid); stroke-width: 1; }
  svg .axis { stroke: var(--axis); stroke-width: 1; }
  svg .tick { fill: var(--text-muted); font-size: 11px;
              font-variant-numeric: tabular-nums; }
  svg .series-line { fill: none; stroke: var(--series-1);
                     stroke-width: 2; stroke-linejoin: round; }
  svg .series-fill { fill: var(--series-1); }
  svg .series-dot { fill: var(--series-1); stroke: var(--surface-1);
                    stroke-width: 2; }
  svg .threshold { stroke: var(--status-critical); stroke-width: 1;
                   stroke-dasharray: 4 3; }
  svg .threshold-label { fill: var(--text-secondary); font-size: 11px; }
  svg .marker-warning { fill: var(--status-warning);
                        stroke: var(--surface-1); stroke-width: 2; }
  svg .marker-critical { fill: var(--status-critical);
                         stroke: var(--surface-1); stroke-width: 2; }
  table { border-collapse: collapse; width: 100%; font-size: 12px; }
  th { text-align: left; color: var(--text-secondary); font-weight: 600;
       padding: 4px 8px; border-bottom: 1px solid var(--axis); }
  td { padding: 4px 8px; border-bottom: 1px solid var(--grid);
       font-variant-numeric: tabular-nums; }
  .sev { font-weight: 600; white-space: nowrap; }
  .sev-critical { color: var(--status-critical); }
  .sev-warning { color: var(--status-warning); }
  .sev-ok { color: var(--status-good); }
"""


def _tile(value: str, label: str) -> str:
    return (
        f'<div class="tile"><div class="value">{_esc(value)}</div>'
        f'<div class="label">{_esc(label)}</div></div>'
    )


def _severity_cell(severity: str) -> str:
    # Icon + label, never color alone.
    icon = "●" if severity == "critical" else "▲"
    return (
        f'<span class="sev sev-{_esc(severity)}">{icon} '
        f"{_esc(severity)}</span>"
    )


def _alerts_table(alerts: Sequence[Mapping[str, Any]]) -> str:
    if not alerts:
        return ('<p class="note"><span class="sev sev-ok">✓ ok</span>'
                " — no alerts fired</p>")
    rows = []
    for alert in reversed(list(alerts)):  # newest first
        rows.append(
            "<tr>"
            f'<td>{alert["time"]:.1f}s</td>'
            f"<td>{_severity_cell(alert['severity'])}</td>"
            f"<td>{_esc(alert['rule'])}</td>"
            f"<td>{_esc(alert['message'])}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr><th>time</th><th>severity</th><th>rule</th>"
        "<th>detail</th></tr></thead><tbody>"
        + "".join(rows) + "</tbody></table>"
    )


def _minutes_table(minutes: Sequence[Mapping[str, Any]]) -> str:
    if not minutes:
        return '<p class="note">no traffic yet</p>'
    rows = []
    for row in minutes[-30:]:
        rows.append(
            "<tr>"
            f'<td>{row["minute"]}</td>'
            f'<td>{row["records"]:g}</td>'
            f'<td>{row["looped"]:g}</td>'
            f'<td>{row["loops"]:g}</td>'
            f'<td>{row["share"]:.2%}</td>'
            "</tr>"
        )
    return (
        "<table><thead><tr><th>minute</th><th>records</th>"
        "<th>looped replicas</th><th>loops closed</th><th>share</th>"
        "</tr></thead><tbody>" + "".join(rows) + "</tbody></table>"
    )


def _perf_table(perf: Mapping[str, Any]) -> str:
    """Stage-timing rows from a :class:`~repro.obs.perf.PipelineProfile`
    snapshot (the ``perf`` state source); data as text, no chart —
    stage counts are few and exact numbers are the point."""
    stages = perf.get("stages") or []
    if not stages:
        return '<p class="note">no stages timed yet</p>'
    rows = []
    for stage in stages:
        throughput = (f"{stage['records_per_sec']:,.0f}"
                      if stage["records"] else "—")
        rows.append(
            "<tr>"
            f'<td>{_esc(stage["name"])}</td>'
            f'<td>{stage["count"]}</td>'
            f'<td>{stage["seconds"]:.3f}s</td>'
            f'<td>{throughput}</td>'
            "</tr>"
        )
    table = (
        "<table><thead><tr><th>stage</th><th>spans</th>"
        "<th>total time</th><th>records/s</th></tr></thead><tbody>"
        + "".join(rows) + "</tbody></table>"
    )
    queues = perf.get("queues") or {}
    if queues:
        depths = ", ".join(f"{_esc(name)}: {depth:g}"
                           for name, depth in sorted(queues.items()))
        table += f'<p class="note">queue depth — {depths}</p>'
    return table


def _loops_table(loops: Sequence[Mapping[str, Any]]) -> str:
    if not loops:
        return '<p class="note">no loops detected yet</p>'
    rows = []
    for loop in list(loops)[-20:]:
        rows.append(
            "<tr>"
            f'<td>{_esc(loop["prefix"])}</td>'
            f'<td>{loop["start"]:.2f}</td>'
            f'<td>{loop["duration"]:.2f}s</td>'
            f'<td>{loop["streams"]}</td>'
            f'<td>{loop["replicas"]}</td>'
            f'<td>{loop["ttl_delta"]}</td>'
            "</tr>"
        )
    return (
        "<table><thead><tr><th>prefix</th><th>start</th>"
        "<th>duration</th><th>streams</th><th>replicas</th>"
        "<th>TTL delta</th></tr></thead><tbody>"
        + "".join(rows) + "</tbody></table>"
    )


def render_html(monitor: LiveMonitor,
                title: str = "Routing-loop live monitor",
                records_per_s: float | None = None) -> str:
    """The dashboard as one self-contained HTML document.

    ``records_per_s`` (when the caller tracks one — the fleet API does)
    adds a live feed-rate tile; standalone monitors omit it.
    """
    state = monitor.state()
    samples = monitor.samples()
    recorder = state["recorder"]
    alerts = state["alerts"]
    minutes = recorder["minutes"]
    now = recorder["now"]

    tile_list = [
        _tile(f"{recorder['records']:,}", "records seen"),
        _tile(f"{len(recorder['loops']):,}", "loops detected"),
        _tile(f"{recorder['peak_looped_share']:.2%}",
              "peak looped share / min"),
        _tile(str(len(alerts)), "alerts fired"),
    ]
    if records_per_s is not None:
        tile_list.insert(1, _tile(f"{records_per_s:,.0f}", "records/s"))
    tiles = "".join(tile_list)

    panels = [
        _panel(
            "Looped traffic share per minute",
            "Sec. VI: loops contribute up to 9% of a minute's loss; "
            "markers are fired alerts",
            _share_svg(minutes, alerts),
        ),
        _panel(
            "TTL-delta distribution (Fig. 2)",
            "hops per loop cycle; deltas 2–3 dominate transient "
            "loops",
            _bars_svg(
                {int(k): v
                 for k, v in recorder["ttl_delta_total"].items()},
                "TTL delta", "TTL delta distribution",
            ),
        ),
        _panel(
            "Stream size CDF (Fig. 3)",
            "replicas per validated stream",
            _cdf_svg(samples["stream_sizes"], "replicas",
                     "stream size CDF"),
        ),
        _panel(
            "Replica spacing CDF (Fig. 4)",
            "seconds between consecutive replicas",
            _cdf_svg(samples["replica_spacings"], "seconds",
                     "replica spacing CDF"),
        ),
        _panel(
            "Stream duration CDF (Fig. 8)",
            "seconds from first to last replica of a stream",
            _cdf_svg(samples["stream_durations"], "seconds",
                     "stream duration CDF"),
        ),
        _panel(
            "Loop duration CDF (Fig. 9)",
            "merged loop lifetimes; ~90% resolve under 10 s",
            _cdf_svg(samples["loop_durations"], "seconds",
                     "loop duration CDF",
                     marker=DURATION_TAIL_LINE, marker_label="10 s tail"),
        ),
    ]
    tables = [
        _panel("Alert history", "newest first", _alerts_table(alerts)),
        _panel("Per-minute windows", "last 30 minutes of trace time",
               _minutes_table(minutes)),
        _panel("Recent loops", "last 20 merged loops",
               _loops_table(recorder["loops"])),
    ]
    perf = state.get("perf")
    if perf:
        tables.append(_panel(
            "Pipeline stage timings",
            "wall-clock per detection stage (perf flight recorder)",
            _perf_table(perf),
        ))

    subtitle = (
        f"trace time {now:.1f}s" if now is not None else "no records yet"
    )
    if state["finished"]:
        subtitle += " · feed finished"

    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_STYLE}</style></head>\n"
        '<body class="viz-root">\n'
        f"<h1>{_esc(title)}</h1>\n"
        f'<p class="subtitle">{_esc(subtitle)}</p>\n'
        f'<div class="tiles">{tiles}</div>\n'
        f'<div class="grid-2">{"".join(panels)}</div>\n'
        "<br>\n"
        f'<div class="grid-2">{"".join(tables)}</div>\n'
        "</body></html>\n"
    )
