"""Process-wide metrics registry.

Three instrument kinds — :class:`Counter`, :class:`Gauge`, and
fixed-bucket :class:`Histogram` — live in a :class:`MetricsRegistry`
that can render a Prometheus-style text exposition or a JSON snapshot.

The design constraint is the forwarding engine's ``_arrive`` hot loop:
observability must cost *nothing* per packet when disabled, and almost
nothing when enabled.  Two mechanisms provide that:

* A disabled registry hands out the module-level null singletons
  (:data:`NULL_COUNTER`, :data:`NULL_GAUGE`, :data:`NULL_HISTOGRAM`),
  whose methods are no-ops — instrumented code holds a direct reference
  and never probes a dict per event.
* Hot paths that already keep plain-int counters (route-cache hits,
  streaming stats) do not touch metric objects at all; they register a
  **pull collector** — a bound method called once per export — that
  publishes the current values.  Collectors are held by weak reference,
  so registering an engine with the process registry never extends the
  engine's lifetime.

The default process-wide registry is **disabled**; the CLI installs an
enabled registry (:func:`set_registry`) before constructing the pipeline
when ``--metrics-out`` or ``--json`` asks for metrics.
"""

from __future__ import annotations

import json
import math
import re
import weakref
from bisect import bisect_left
from typing import Any, Callable, Iterable

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram buckets, tuned for loop/phase durations in seconds
#: (the paper's Fig. 9 spans ~100 ms to minutes).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
    300.0, 600.0,
)


class MetricsError(ValueError):
    """Raised for invalid metric names or kind collisions."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricsError(f"invalid metric name {name!r}")
    return name


class Counter:
    """A monotonically increasing count.

    :meth:`set` exists for pull collectors that mirror an externally
    maintained plain-int counter (it must never be used to go backwards).
    """

    __slots__ = ("name", "help", "_value")
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self._value: float = 0

    def inc(self, amount: float = 1) -> None:
        self._value += amount

    def set(self, value: float) -> None:
        """Publish an externally maintained monotonic value."""
        self._value = value

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "help", "_value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self._value: float = 0

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1) -> None:
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram of observations.

    Bucket bounds are upper bounds, exclusive of ``+Inf`` (which is
    implicit).  Counts are kept per bucket and cumulated only at export,
    so :meth:`observe` is one bisect plus one list increment.
    """

    __slots__ = ("name", "help", "bounds", "_counts", "_sum", "_count")
    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricsError(f"histogram {name!r} needs >= 1 bucket")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self._counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, self._count))
        return out


class _NullCounter:
    """No-op counter handed out by a disabled registry."""

    __slots__ = ()
    kind = "counter"
    name = ""
    help = ""
    value = 0

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    kind = "gauge"
    name = ""
    help = ""
    value = 0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    kind = "histogram"
    name = ""
    help = ""
    count = 0
    sum = 0.0
    bounds: tuple[float, ...] = ()

    def observe(self, value: float) -> None:
        pass

    def cumulative(self) -> list[tuple[float, int]]:
        return []


#: Shared no-op instruments: one allocation per process, ever.
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()

Collector = Callable[["MetricsRegistry"], None]


class MetricsRegistry:
    """A named collection of instruments plus pull collectors."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._collectors: list[Any] = []  # weak or strong refs

    # -- instrument factories -------------------------------------------------

    def _get(self, name: str, kind: str, factory):
        if not self.enabled:
            return {"counter": NULL_COUNTER, "gauge": NULL_GAUGE,
                    "histogram": NULL_HISTOGRAM}[kind]
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise MetricsError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, "counter", lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(name, help))

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, "histogram",
                         lambda: Histogram(name, help, buckets))

    # -- pull collectors ------------------------------------------------------

    def register_collector(self, fn: Collector) -> None:
        """Register ``fn(registry)`` to be called before every export.

        Bound methods are held via :class:`weakref.WeakMethod` so a
        registered object (a forwarding engine, a streaming detector)
        can still be garbage collected; plain functions are held
        strongly.  No-op on a disabled registry.
        """
        if not self.enabled:
            return
        try:
            ref: Any = weakref.WeakMethod(fn)  # type: ignore[arg-type]
        except TypeError:
            ref = lambda fn=fn: fn  # strong ref, uniform call-to-deref
        self._collectors.append(ref)

    def collect(self) -> None:
        """Run every live collector; prune dead ones."""
        live = []
        for ref in self._collectors:
            fn = ref()
            if fn is None:
                continue
            fn(self)
            live.append(ref)
        self._collectors = live

    # -- export ---------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """All current values as a JSON-ready dict (runs collectors)."""
        self.collect()
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, Any] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "buckets": [
                        ["+Inf" if math.isinf(bound) else bound, count]
                        for bound, count in metric.cumulative()
                    ],
                }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        self.collect()
        lines: list[str] = []
        for name, metric in sorted(self._metrics.items()):
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for bound, count in metric.cumulative():
                    le = "+Inf" if math.isinf(bound) else _num(bound)
                    lines.append(f'{name}_bucket{{le="{le}"}} {count}')
                lines.append(f"{name}_sum {_num(metric.sum)}")
                lines.append(f"{name}_count {metric.count}")
            else:
                lines.append(f"{name} {_num(metric.value)}")
        return "\n".join(lines) + "\n"


def _num(value: float) -> str:
    """Render a number losslessly, preferring the integer form."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def parse_prometheus(text: str) -> dict[str, Any]:
    """Parse text produced by :meth:`MetricsRegistry.render_prometheus`
    back into the :meth:`MetricsRegistry.snapshot` shape (round-trip
    support for tests and downstream tooling)."""
    kinds: dict[str, str] = {}
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, Any] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                kinds[parts[2]] = parts[3]
            continue
        name_part, value_text = line.rsplit(None, 1)
        value = float(value_text)
        if "{" in name_part:
            name, label_part = name_part.split("{", 1)
            base = name[:-len("_bucket")]
            le_text = label_part.split('"')[1]
            bound: Any = "+Inf" if le_text == "+Inf" else float(le_text)
            hist = histograms.setdefault(
                base, {"count": 0, "sum": 0.0, "buckets": []}
            )
            hist["buckets"].append([bound, int(value)])
            continue
        name = name_part
        if name.endswith("_sum") and name[:-4] in kinds \
                and kinds[name[:-4]] == "histogram":
            histograms.setdefault(
                name[:-4], {"count": 0, "sum": 0.0, "buckets": []}
            )["sum"] = value
        elif name.endswith("_count") and name[:-6] in kinds \
                and kinds[name[:-6]] == "histogram":
            histograms.setdefault(
                name[:-6], {"count": 0, "sum": 0.0, "buckets": []}
            )["count"] = int(value)
        elif kinds.get(name) == "gauge":
            gauges[name] = value
        else:
            counters[name] = value
    return {"counters": counters, "gauges": gauges,
            "histograms": histograms}


#: The process-wide registry; disabled until someone opts in.
_registry = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The current process-wide registry."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` process-wide; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous
