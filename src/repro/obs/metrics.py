"""Process-wide metrics registry.

Three instrument kinds — :class:`Counter`, :class:`Gauge`, and
fixed-bucket :class:`Histogram` — live in a :class:`MetricsRegistry`
that can render a Prometheus-style text exposition or a JSON snapshot.

The design constraint is the forwarding engine's ``_arrive`` hot loop:
observability must cost *nothing* per packet when disabled, and almost
nothing when enabled.  Two mechanisms provide that:

* A disabled registry hands out the module-level null singletons
  (:data:`NULL_COUNTER`, :data:`NULL_GAUGE`, :data:`NULL_HISTOGRAM`),
  whose methods are no-ops — instrumented code holds a direct reference
  and never probes a dict per event.
* Hot paths that already keep plain-int counters (route-cache hits,
  streaming stats) do not touch metric objects at all; they register a
  **pull collector** — a bound method called once per export — that
  publishes the current values.  Collectors are held by weak reference,
  so registering an engine with the process registry never extends the
  engine's lifetime.

The default process-wide registry is **disabled**; the CLI installs an
enabled registry (:func:`set_registry`) before constructing the pipeline
when ``--metrics-out`` or ``--json`` asks for metrics.
"""

from __future__ import annotations

import json
import math
import re
import time
import weakref
from bisect import bisect_left
from typing import Any, Callable, Iterable

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets, tuned for loop/phase durations in seconds
#: (the paper's Fig. 9 spans ~100 ms to minutes).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
    300.0, 600.0,
)


class MetricsError(ValueError):
    """Raised for invalid metric names or kind collisions."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricsError(f"invalid metric name {name!r}")
    return name


#: Canonical label storage: sorted ``(name, value)`` pairs.
Labels = tuple[tuple[str, str], ...]


def _check_labels(labels: "dict[str, str] | None") -> Labels:
    if not labels:
        return ()
    out = []
    for key in sorted(labels):
        if not _LABEL_NAME_RE.match(key):
            raise MetricsError(f"invalid label name {key!r}")
        out.append((key, str(labels[key])))
    return tuple(out)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format: backslash,
    double quote, and line feed."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def unescape_label_value(text: str) -> str:
    """Inverse of :func:`escape_label_value`."""
    out: list[str] = []
    i = 0
    while i < len(text):
        char = text[i]
        if char == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == '"':
                out.append('"')
            elif nxt == "n":
                out.append("\n")
            else:
                # Unknown escape: the spec says pass it through verbatim.
                out.append(char)
                out.append(nxt)
            i += 2
            continue
        out.append(char)
        i += 1
    return "".join(out)


def _render_labels(labels: Labels) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in labels
    )
    return "{" + inner + "}"


def series_id(name: str, labels: Labels = ()) -> str:
    """The canonical exported series name: ``name{label="value",...}``
    with sorted label names and escaped values (bare name when
    unlabeled).  Snapshot keys and the text exposition use this form."""
    return name + _render_labels(labels)


class Counter:
    """A monotonically increasing count.

    :meth:`set` exists for pull collectors that mirror an externally
    maintained plain-int counter (it must never be used to go backwards).
    """

    __slots__ = ("name", "help", "labels", "_value")
    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: dict[str, str] | None = None) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labels = _check_labels(labels)
        self._value: float = 0

    def inc(self, amount: float = 1) -> None:
        self._value += amount

    def set(self, value: float) -> None:
        """Publish an externally maintained monotonic value."""
        self._value = value

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "help", "labels", "_value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: dict[str, str] | None = None) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labels = _check_labels(labels)
        self._value: float = 0

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1) -> None:
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    ``with histogram.time() as timer: ...`` observes the elapsed time
    into the histogram on exit; ``timer.seconds`` stays readable
    afterwards, so call sites that keep their own stats reuse the same
    measurement instead of a second ``perf_counter`` pair.  A bare
    ``Timer()`` (no histogram) is the registry-free form of that idiom.
    """

    __slots__ = ("_histogram", "_t0", "seconds")

    def __init__(self, histogram: "Histogram | None" = None) -> None:
        self._histogram = histogram
        self._t0 = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._t0
        if self._histogram is not None:
            self._histogram.observe(self.seconds)


class Histogram:
    """Fixed-bucket histogram of observations.

    Bucket bounds are upper bounds, exclusive of ``+Inf`` (which is
    implicit).  Counts are kept per bucket and cumulated only at export,
    so :meth:`observe` is one bisect plus one list increment.
    """

    __slots__ = ("name", "help", "labels", "bounds", "_counts", "_sum",
                 "_count")
    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS,
                 labels: dict[str, str] | None = None) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labels = _check_labels(labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricsError(f"histogram {name!r} needs >= 1 bucket")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self._counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, self._count))
        return out

    def time(self) -> Timer:
        """``with histogram.time(): ...`` — observe the elapsed seconds."""
        return Timer(self)


class _NullCounter:
    """No-op counter handed out by a disabled registry."""

    __slots__ = ()
    kind = "counter"
    name = ""
    help = ""
    labels: Labels = ()
    value = 0

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    kind = "gauge"
    name = ""
    help = ""
    labels: Labels = ()
    value = 0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    kind = "histogram"
    name = ""
    help = ""
    labels: Labels = ()
    count = 0
    sum = 0.0
    bounds: tuple[float, ...] = ()

    def observe(self, value: float) -> None:
        pass

    def cumulative(self) -> list[tuple[float, int]]:
        return []

    def time(self) -> Timer:
        # Still measures (callers may read timer.seconds); the
        # observation itself is the no-op.
        return Timer(None)


#: Shared no-op instruments: one allocation per process, ever.
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()

Collector = Callable[["MetricsRegistry"], None]


class MetricsRegistry:
    """A named collection of instruments plus pull collectors."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._collectors: list[Any] = []  # weak or strong refs

    # -- instrument factories -------------------------------------------------

    def _get(self, name: str, kind: str, factory,
             labels: dict[str, str] | None = None):
        if not self.enabled:
            return {"counter": NULL_COUNTER, "gauge": NULL_GAUGE,
                    "histogram": NULL_HISTOGRAM}[kind]
        key = series_id(_check_name(name), _check_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        elif metric.kind != kind:
            raise MetricsError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "",
                labels: dict[str, str] | None = None) -> Counter:
        return self._get(name, "counter",
                         lambda: Counter(name, help, labels), labels)

    def gauge(self, name: str, help: str = "",
              labels: dict[str, str] | None = None) -> Gauge:
        return self._get(name, "gauge",
                         lambda: Gauge(name, help, labels), labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS,
                  labels: dict[str, str] | None = None) -> Histogram:
        return self._get(name, "histogram",
                         lambda: Histogram(name, help, buckets, labels),
                         labels)

    def timer(self, name: str, help: str = "",
              buckets: Iterable[float] = DEFAULT_BUCKETS,
              labels: dict[str, str] | None = None) -> Timer:
        """``with registry.timer("phase_seconds"): ...`` — time a block
        into the named histogram (a no-op observation when disabled)."""
        return self.histogram(name, help, buckets, labels).time()

    # -- pull collectors ------------------------------------------------------

    def register_collector(self, fn: Collector) -> None:
        """Register ``fn(registry)`` to be called before every export.

        Bound methods are held via :class:`weakref.WeakMethod` so a
        registered object (a forwarding engine, a streaming detector)
        can still be garbage collected; plain functions are held
        strongly.  No-op on a disabled registry.
        """
        if not self.enabled:
            return
        try:
            ref: Any = weakref.WeakMethod(fn)  # type: ignore[arg-type]
        except TypeError:
            ref = lambda fn=fn: fn  # strong ref, uniform call-to-deref
        self._collectors.append(ref)

    def collect(self) -> None:
        """Run every live collector; prune dead ones."""
        live = []
        for ref in self._collectors:
            fn = ref()
            if fn is None:
                continue
            fn(self)
            live.append(ref)
        self._collectors = live

    # -- export ---------------------------------------------------------------

    def _sorted_metrics(self):
        """Instruments sorted by family name then labelset, so labeled
        series of one family stay adjacent in the exposition."""
        return sorted(self._metrics.values(),
                      key=lambda m: (m.name, m.labels))

    def snapshot(self) -> dict[str, Any]:
        """All current values as a JSON-ready dict (runs collectors).

        Keys are :func:`series_id` strings — the bare metric name for
        unlabeled instruments, ``name{label="value",...}`` otherwise.
        """
        self.collect()
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, Any] = {}
        for metric in self._sorted_metrics():
            key = series_id(metric.name, metric.labels)
            if isinstance(metric, Counter):
                counters[key] = metric.value
            elif isinstance(metric, Gauge):
                gauges[key] = metric.value
            else:
                histograms[key] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "buckets": [
                        ["+Inf" if math.isinf(bound) else bound, count]
                        for bound, count in metric.cumulative()
                    ],
                }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def dump(self) -> list[dict[str, Any]]:
        """A lossless, picklable description of every instrument (runs
        collectors first).

        Unlike :meth:`snapshot`, the dump keeps kind, help text, label
        pairs, and raw histogram bucket bounds/counts, so
        :func:`registry_from_dump` can rebuild a registry whose
        :meth:`render_prometheus` output is byte-identical.  This is
        the fleet worker-process relay format: workers ship dumps over
        the command pipe; the parent rebuilds per-link registries for
        ``/metrics`` merging.
        """
        self.collect()
        out: list[dict[str, Any]] = []
        for metric in self._sorted_metrics():
            entry: dict[str, Any] = {
                "kind": metric.kind,
                "name": metric.name,
                "help": metric.help,
                "labels": [list(pair) for pair in metric.labels],
            }
            if isinstance(metric, Histogram):
                entry["bounds"] = list(metric.bounds)
                entry["bucket_counts"] = list(metric._counts)
                entry["sum"] = metric.sum
                entry["count"] = metric.count
            else:
                entry["value"] = metric.value
            out.append(entry)
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Label values are escaped per the spec (``\\`` → ``\\\\``,
        ``"`` → ``\\"``, newline → ``\\n``); HELP/TYPE headers are
        emitted once per metric family.
        """
        self.collect()
        lines: list[str] = []
        seen_families: set[str] = set()
        for metric in self._sorted_metrics():
            name = metric.name
            if name not in seen_families:
                seen_families.add(name)
                if metric.help:
                    help_text = (metric.help.replace("\\", "\\\\")
                                            .replace("\n", "\\n"))
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for bound, count in metric.cumulative():
                    le = "+Inf" if math.isinf(bound) else _num(bound)
                    bucket_labels = metric.labels + (("le", le),)
                    lines.append(
                        f"{name}_bucket{_render_labels(bucket_labels)} "
                        f"{count}"
                    )
                suffix = _render_labels(metric.labels)
                lines.append(f"{name}_sum{suffix} {_num(metric.sum)}")
                lines.append(f"{name}_count{suffix} {metric.count}")
            else:
                lines.append(
                    f"{name}{_render_labels(metric.labels)} "
                    f"{_num(metric.value)}"
                )
        return "\n".join(lines) + "\n"


def registry_from_dump(dump: "list[dict[str, Any]]") -> MetricsRegistry:
    """Rebuild a :class:`MetricsRegistry` from :meth:`MetricsRegistry.
    dump` output; the rebuilt registry renders byte-identical
    Prometheus text and merges like the original."""
    registry = MetricsRegistry(enabled=True)
    for entry in dump:
        labels = {key: value for key, value in entry.get("labels", [])}
        kind = entry["kind"]
        if kind == "counter":
            registry.counter(entry["name"], entry.get("help", ""),
                             labels or None).set(entry["value"])
        elif kind == "gauge":
            registry.gauge(entry["name"], entry.get("help", ""),
                           labels or None).set(entry["value"])
        elif kind == "histogram":
            histogram = registry.histogram(
                entry["name"], entry.get("help", ""),
                buckets=entry["bounds"], labels=labels or None,
            )
            histogram._counts = list(entry["bucket_counts"])
            histogram._sum = entry["sum"]
            histogram._count = entry["count"]
        else:
            raise MetricsError(f"unknown instrument kind {kind!r}")
    return registry


def merged_registry(
    named: "dict[str, MetricsRegistry]",
    label: str = "link",
) -> MetricsRegistry:
    """Merge several registries into one, tagging every series with a
    constant ``label="<name>"`` pair.

    The fleet ``/metrics`` endpoint aggregates per-link registries this
    way: two links both exporting ``streaming_records_total`` become two
    series of one family (``streaming_records_total{link="a"}`` and
    ``{link="b"}``) instead of colliding.  Each source registry's pull
    collectors run once (via :meth:`MetricsRegistry.collect`), then its
    instruments are *copied* — the merged registry is a point-in-time
    snapshot, safe to render from another thread while the sources keep
    counting.

    Raises :class:`MetricsError` for an invalid label name or when a
    source instrument already carries ``label`` (the merge would
    silently overwrite it otherwise).
    """
    if not _LABEL_NAME_RE.match(label):
        raise MetricsError(f"invalid label name {label!r}")
    merged = MetricsRegistry(enabled=True)
    for value in sorted(named):
        registry = named[value]
        registry.collect()
        for metric in registry._sorted_metrics():
            if any(key == label for key, _ in metric.labels):
                raise MetricsError(
                    f"metric {metric.name!r} already carries label "
                    f"{label!r}; cannot merge registry {value!r}"
                )
            labels = dict(metric.labels)
            labels[label] = str(value)
            if isinstance(metric, Counter):
                merged.counter(metric.name, metric.help,
                               labels).set(metric.value)
            elif isinstance(metric, Gauge):
                merged.gauge(metric.name, metric.help,
                             labels).set(metric.value)
            else:
                copy = merged.histogram(metric.name, metric.help,
                                        metric.bounds, labels)
                copy._counts = list(metric._counts)
                copy._sum = metric.sum
                copy._count = metric.count
    return merged


def _num(value: float) -> str:
    """Render a number losslessly, preferring the integer form."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _parse_labels(text: str) -> dict[str, str]:
    """Parse the inside of a ``{...}`` label block, honouring escapes.

    A naive ``split('"')`` breaks the moment a value contains an escaped
    quote or a second label follows — this is a small scanner instead.
    """
    labels: dict[str, str] = {}
    i = 0
    length = len(text)
    while i < length:
        while i < length and text[i] in ", \t":
            i += 1
        if i >= length:
            break
        eq = text.find("=", i)
        if eq < 0:
            raise MetricsError(f"malformed label block {text!r}")
        name = text[i:eq].strip()
        if not _LABEL_NAME_RE.match(name):
            raise MetricsError(f"invalid label name {name!r}")
        i = eq + 1
        if i >= length or text[i] != '"':
            raise MetricsError(f"unquoted label value in {text!r}")
        i += 1
        raw: list[str] = []
        while i < length:
            char = text[i]
            if char == "\\" and i + 1 < length:
                raw.append(text[i:i + 2])
                i += 2
                continue
            if char == '"':
                break
            raw.append(char)
            i += 1
        if i >= length:
            raise MetricsError(f"unterminated label value in {text!r}")
        i += 1  # closing quote
        labels[name] = unescape_label_value("".join(raw))
    return labels


_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?$", re.DOTALL
)


def _split_sample(name_part: str) -> tuple[str, dict[str, str]]:
    match = _SAMPLE_RE.match(name_part)
    if match is None:
        raise MetricsError(f"malformed sample name {name_part!r}")
    name, label_text = match.group(1), match.group(2)
    return name, _parse_labels(label_text) if label_text else {}


def parse_prometheus(text: str) -> dict[str, Any]:
    """Parse text produced by :meth:`MetricsRegistry.render_prometheus`
    back into the :meth:`MetricsRegistry.snapshot` shape (round-trip
    support for tests and downstream tooling).

    Handles escaped label values (``\\\\``, ``\\"``, ``\\n``) and
    multi-label metrics — histogram bucket lines may carry labels besides
    ``le``; each distinct labelset becomes its own histogram entry keyed
    by :func:`series_id`.
    """
    kinds: dict[str, str] = {}
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, Any] = {}

    def hist_entry(base: str, labels: dict[str, str]) -> dict[str, Any]:
        key = series_id(base, _check_labels(labels))
        return histograms.setdefault(
            key, {"count": 0, "sum": 0.0, "buckets": []}
        )

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                kinds[parts[2]] = parts[3]
            continue
        name_part, value_text = line.rsplit(None, 1)
        value = float(value_text)
        name, labels = _split_sample(name_part)
        if (name.endswith("_bucket") and "le" in labels
                and kinds.get(name[:-len("_bucket")]) == "histogram"):
            le_text = labels.pop("le")
            bound: Any = "+Inf" if le_text == "+Inf" else float(le_text)
            hist_entry(name[:-len("_bucket")], labels)["buckets"].append(
                [bound, int(value)]
            )
            continue
        if name.endswith("_sum") and kinds.get(name[:-4]) == "histogram":
            hist_entry(name[:-4], labels)["sum"] = value
            continue
        if name.endswith("_count") and kinds.get(name[:-6]) == "histogram":
            hist_entry(name[:-6], labels)["count"] = int(value)
            continue
        key = series_id(name, _check_labels(labels))
        if kinds.get(name) == "gauge":
            gauges[key] = value
        else:
            counters[key] = value
    return {"counters": counters, "gauges": gauges,
            "histograms": histograms}


#: The process-wide registry; disabled until someone opts in.
_registry = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The current process-wide registry."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` process-wide; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous
