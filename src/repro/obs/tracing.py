"""Span/event tracer with JSONL output.

A :class:`Tracer` records two shapes:

* **events** — a point in time: ``{"type": "event", "name": ..., "t":
  ..., "attrs": {...}}``;
* **spans** — an interval with identity and nesting: ``{"type":
  "span", "id": ..., "parent": ..., "name": ..., "t0": ..., "t1": ...,
  "attrs": {...}}``.

Timestamps come from the tracer's ``clock`` — wall time
(:func:`time.perf_counter`) by default, or **simulation time** when the
backbone scenario wires ``clock = lambda: scheduler.now``.  Callers can
always pass an explicit ``time=``; records from a different clock domain
than the tracer's should carry a ``clock`` attr (the detection pipeline
tags its wall-clock phase spans with ``clock="wall"``, while loop
intervals carry trace/simulation time).

Records are kept in memory (``tracer.records``) and, when a ``sink`` is
given, written eagerly as JSON lines and flushed every ``flush_every``
records (default 32) — a pipeline task dying mid-run loses at most one
batch of spans, not the whole buffer.  Spans are written when they
*end*; within one process the file is therefore ordered by completion,
and consumers that need start order sort on ``t0``.

Nesting is tracked with a stack of open spans: a span begun while
another is open records that span as its ``parent`` (explicit
``parent=`` overrides).  Spans may end out of stack order — per-router
convergence spans interleave freely.

The module-level :data:`NULL_TRACER` is the disabled path: every method
is a no-op, so instrumented code holds a tracer reference
unconditionally and pays one dynamic dispatch per *control-plane* event
(never per packet) when tracing is off.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, IO, Iterable


class NullTracer:
    """No-op tracer; see :data:`NULL_TRACER`."""

    __slots__ = ()
    enabled = False
    records: tuple = ()

    def event(self, name: str, time: float | None = None,
              **attrs: Any) -> None:
        pass

    def begin(self, name: str, time: float | None = None,
              parent: int | None = None, **attrs: Any) -> int:
        return 0

    def end(self, span_id: int, time: float | None = None,
            **attrs: Any) -> None:
        pass

    def span(self, name: str, t0: float, t1: float,
             parent: int | None = None, **attrs: Any) -> int:
        return 0

    def phase(self, name: str, **attrs: Any) -> "_NullPhase":
        return _NULL_PHASE

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class _NullPhase:
    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def note(self, **attrs: Any) -> None:
        pass


_NULL_PHASE = _NullPhase()

#: The shared disabled tracer.
NULL_TRACER = NullTracer()


class _Phase:
    """Context manager for a wall-clock pipeline phase span."""

    __slots__ = ("_tracer", "_name", "_attrs", "_id")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._id = 0

    def __enter__(self) -> "_Phase":
        self._id = self._tracer.begin(self._name, **self._attrs)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer.end(self._id)

    def note(self, **attrs: Any) -> None:
        """Attach attrs to the span when it ends."""
        self._attrs.update(attrs)
        open_span = self._tracer._open.get(self._id)
        if open_span is not None:
            open_span["attrs"].update(attrs)


class Tracer:
    """Recording tracer; see module docstring for the record schema."""

    enabled = True

    def __init__(
        self,
        sink: IO[str] | None = None,
        clock: Callable[[], float] = time.perf_counter,
        keep: bool = True,
        flush_every: int = 32,
    ) -> None:
        self.sink = sink
        self.clock = clock
        self.keep = keep
        #: Flush the sink after this many buffered records (crash
        #: durability: a pipeline task dying mid-run loses at most one
        #: batch of spans, not everything since open).  ``0`` restores
        #: flush-on-close-only.
        self.flush_every = flush_every
        self.records: list[dict[str, Any]] = []
        self._next_id = 1
        self._open: dict[int, dict[str, Any]] = {}
        self._stack: list[int] = []
        self._unflushed = 0

    # -- emission -------------------------------------------------------------

    def _emit(self, record: dict[str, Any]) -> None:
        if self.keep:
            self.records.append(record)
        if self.sink is not None:
            self.sink.write(json.dumps(record, sort_keys=True) + "\n")
            self._unflushed += 1
            if self.flush_every and self._unflushed >= self.flush_every:
                self.flush()

    def event(self, name: str, time: float | None = None,
              **attrs: Any) -> None:
        """Record a point event at ``time`` (default: the clock's now)."""
        self._emit({
            "type": "event",
            "name": name,
            "t": self.clock() if time is None else time,
            "attrs": attrs,
        })

    def begin(self, name: str, time: float | None = None,
              parent: int | None = None, **attrs: Any) -> int:
        """Open a span; returns its id for :meth:`end`."""
        span_id = self._next_id
        self._next_id += 1
        if parent is None:
            parent = self._stack[-1] if self._stack else 0
        self._open[span_id] = {
            "id": span_id,
            "parent": parent,
            "name": name,
            "t0": self.clock() if time is None else time,
            "attrs": attrs,
        }
        self._stack.append(span_id)
        return span_id

    def end(self, span_id: int, time: float | None = None,
            **attrs: Any) -> None:
        """Close an open span (idempotent for unknown/closed ids)."""
        open_span = self._open.pop(span_id, None)
        if open_span is None:
            return
        if span_id in self._stack:
            self._stack.remove(span_id)
        open_span["attrs"].update(attrs)
        self._emit({
            "type": "span",
            "id": open_span["id"],
            "parent": open_span["parent"],
            "name": open_span["name"],
            "t0": open_span["t0"],
            "t1": self.clock() if time is None else time,
            "attrs": open_span["attrs"],
        })

    def span(self, name: str, t0: float, t1: float,
             parent: int | None = None, **attrs: Any) -> int:
        """Record an already-completed interval (e.g. a detected loop,
        a worker's timing measured elsewhere)."""
        span_id = self._next_id
        self._next_id += 1
        self._emit({
            "type": "span",
            "id": span_id,
            "parent": 0 if parent is None else parent,
            "name": name,
            "t0": t0,
            "t1": t1,
            "attrs": attrs,
        })
        return span_id

    def phase(self, name: str, **attrs: Any) -> _Phase:
        """``with tracer.phase("detect.validate"): ...`` convenience."""
        return _Phase(self, name, attrs)

    # -- lifecycle ------------------------------------------------------------

    def flush(self) -> None:
        if self.sink is not None:
            self.sink.flush()
        self._unflushed = 0

    def close(self) -> None:
        """End any spans left open (tagged ``unclosed``) and flush."""
        for span_id in sorted(self._open):
            self.end(span_id, unclosed=True)
        self.flush()


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Load a JSONL trace file back into a list of record dicts."""
    records = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def spans(records: Iterable[dict[str, Any]],
          name: str | None = None) -> list[dict[str, Any]]:
    """The span records (optionally only those named ``name``),
    sorted by start time."""
    out = [r for r in records
           if r.get("type") == "span" and (name is None or r["name"] == name)]
    out.sort(key=lambda r: (r["t0"], r["t1"]))
    return out


def events(records: Iterable[dict[str, Any]],
           name: str | None = None) -> list[dict[str, Any]]:
    """The event records (optionally only those named ``name``),
    sorted by time."""
    out = [r for r in records
           if r.get("type") == "event" and (name is None or r["name"] == name)]
    out.sort(key=lambda r: r["t"])
    return out
