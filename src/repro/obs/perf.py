"""Performance flight recorder: stage timing, sampling profiler, and
benchmark provenance.

Three layers, one module:

* :class:`PipelineProfile` / :class:`StageTimer` — nested wall-clock
  spans over the detection pipeline's stages (columnar ingest, step-1
  kernel, shard fan-out, worker detect, validate/merge, recorder feed).
  Per-stage totals accumulate in the profile (count, seconds, records,
  bytes → derived throughput) and, when a
  :class:`~repro.obs.metrics.MetricsRegistry` is attached, feed
  ``perf_stage_seconds`` histograms and
  ``perf_stage_records_total`` / ``perf_stage_bytes_total`` counters.
  Queue-depth/backpressure gauges ride along via :meth:`PipelineProfile.
  queue_depth`.  The module-level :data:`NULL_PROFILE` is the disabled
  path, mirroring :data:`~repro.obs.tracing.NULL_TRACER`.

* :class:`SamplingProfiler` — a daemon thread that snapshots every
  thread's stack via :func:`sys._current_frames` at ~100 Hz (default)
  and aggregates collapsed stacks (``thread:x;mod:fn;mod:fn count``),
  the input format of ``flamegraph.pl`` and speedscope.  Overhead is one
  frame walk per interval, independent of the workload's event rate.

* Benchmark provenance — :func:`bench_document` /
  :func:`compare_benchmarks` define the ``repro-bench/1`` JSON schema
  that ``benchmarks/provenance.py`` emits and the ``repro perf
  compare`` CLI subcommand diffs (exit 0 ok / 1 regression / 2 schema
  mismatch).

Stage names are dotted paths; nesting is tracked per thread, so a
worker's ``detect.shard`` span correctly records ``parallel.detect`` as
its parent even while another thread times ``source.wait``.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable, IO

from repro.obs.metrics import MetricsRegistry

#: Histogram buckets for stage durations: pipeline stages run from tens
#: of microseconds (a recorder feed) to tens of seconds (a full-file
#: detect), finer than the loop-duration DEFAULT_BUCKETS.
PERF_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class StageStats:
    """Accumulated totals for one named stage."""

    __slots__ = ("name", "parent", "count", "seconds", "records", "bytes")

    def __init__(self, name: str, parent: str | None) -> None:
        self.name = name
        self.parent = parent
        self.count = 0
        self.seconds = 0.0
        self.records = 0
        self.bytes = 0

    @property
    def records_per_sec(self) -> float:
        return self.records / self.seconds if self.seconds > 0 else 0.0

    @property
    def bytes_per_sec(self) -> float:
        return self.bytes / self.seconds if self.seconds > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "parent": self.parent,
            "count": self.count,
            "seconds": self.seconds,
            "records": self.records,
            "bytes": self.bytes,
            "records_per_sec": self.records_per_sec,
            "bytes_per_sec": self.bytes_per_sec,
        }


class StageTimer:
    """Context manager timing one stage execution.

    ``seconds`` is valid after ``__exit__`` — call sites that also keep
    their own stats (:class:`~repro.parallel.engine.ParallelStats`) read
    it instead of keeping a second ``perf_counter`` pair.
    """

    __slots__ = ("_profile", "name", "records", "bytes", "seconds",
                 "_t0", "_parent")

    def __init__(self, profile: "PipelineProfile", name: str,
                 records: int = 0, bytes: int = 0) -> None:
        self._profile = profile
        self.name = name
        self.records = records
        self.bytes = bytes
        self.seconds = 0.0
        self._t0 = 0.0
        self._parent: str | None = None

    def add(self, records: int = 0, bytes: int = 0) -> None:
        """Attach throughput denominators discovered mid-stage."""
        self.records += records
        self.bytes += bytes

    def __enter__(self) -> "StageTimer":
        self._parent = self._profile._push(self.name)
        self._t0 = self._profile.clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = self._profile.clock() - self._t0
        self._profile._pop(self)


class _NullStage:
    """Shared no-op stage timer handed out by :data:`NULL_PROFILE`."""

    __slots__ = ()
    name = ""
    records = 0
    bytes = 0
    seconds = 0.0

    def add(self, records: int = 0, bytes: int = 0) -> None:
        pass

    def __enter__(self) -> "_NullStage":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


class NullProfile:
    """No-op profile; see :data:`NULL_PROFILE`."""

    __slots__ = ()
    enabled = False

    def stage(self, name: str, records: int = 0,
              bytes: int = 0) -> _NullStage:
        return _NULL_STAGE

    def queue_depth(self, queue: str, depth: float) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {"stages": [], "queues": {}}


_NULL_STAGE = _NullStage()

#: The shared disabled profile.
NULL_PROFILE = NullProfile()


class PipelineProfile:
    """Per-stage timing accumulator for one pipeline instance.

    >>> profile = PipelineProfile(registry)
    >>> with profile.stage("ingest", bytes=len(buf)) as span:
    ...     trace = ingest(buf)
    ...     span.add(records=len(trace))
    >>> profile.snapshot()["stages"][0]["records_per_sec"]

    Thread-safe: stages may start and finish on different threads (the
    fleet's executor, parallel workers); the per-thread nesting stack
    keeps parents straight, and accumulation happens under a lock once
    per stage *span* — never per record.
    """

    enabled = True

    def __init__(self, registry: MetricsRegistry | None = None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.registry = registry
        self.clock = clock
        self._lock = threading.Lock()
        self._stages: dict[str, StageStats] = {}
        self._queues: dict[str, float] = {}
        self._local = threading.local()
        self._instruments: dict[str, tuple] = {}

    # -- recording ------------------------------------------------------------

    def stage(self, name: str, records: int = 0,
              bytes: int = 0) -> StageTimer:
        """``with profile.stage("step1.kernel", records=n): ...``"""
        return StageTimer(self, name, records, bytes)

    def _push(self, name: str) -> str | None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        parent = stack[-1] if stack else None
        stack.append(name)
        return parent

    def _pop(self, timer: StageTimer) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] == timer.name:
            stack.pop()
        with self._lock:
            stats = self._stages.get(timer.name)
            if stats is None:
                stats = StageStats(timer.name, timer._parent)
                self._stages[timer.name] = stats
            stats.count += 1
            stats.seconds += timer.seconds
            stats.records += timer.records
            stats.bytes += timer.bytes
        registry = self.registry
        if registry is not None and registry.enabled:
            instruments = self._instruments.get(timer.name)
            if instruments is None:
                labels = {"stage": timer.name}
                instruments = (
                    registry.histogram(
                        "perf_stage_seconds",
                        "Wall-clock seconds per pipeline stage span",
                        buckets=PERF_BUCKETS, labels=labels),
                    registry.counter(
                        "perf_stage_records_total",
                        "Records processed per pipeline stage",
                        labels=labels),
                    registry.counter(
                        "perf_stage_bytes_total",
                        "Bytes processed per pipeline stage",
                        labels=labels),
                )
                self._instruments[timer.name] = instruments
            seconds_hist, records_total, bytes_total = instruments
            seconds_hist.observe(timer.seconds)
            if timer.records:
                records_total.inc(timer.records)
            if timer.bytes:
                bytes_total.inc(timer.bytes)

    def queue_depth(self, queue: str, depth: float) -> None:
        """Publish a queue-depth/backpressure gauge (e.g. pending source
        batches, executor backlog)."""
        with self._lock:
            self._queues[queue] = depth
        registry = self.registry
        if registry is not None and registry.enabled:
            registry.gauge(
                "perf_queue_depth",
                "Pipeline queue depth (pending items)",
                labels={"queue": queue},
            ).set(depth)

    # -- reading --------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready per-stage totals, in first-seen order."""
        with self._lock:
            return {
                "stages": [s.to_dict() for s in self._stages.values()],
                "queues": dict(self._queues),
            }

    def stage_seconds(self) -> dict[str, float]:
        """``{stage name: total seconds}`` convenience view."""
        with self._lock:
            return {name: s.seconds for name, s in self._stages.items()}


# -- sampling profiler --------------------------------------------------------


class SamplingProfiler:
    """Thread-based sampling stack profiler with collapsed-stack output.

    >>> with SamplingProfiler() as profiler:
    ...     run_detection()
    >>> Path("profile.txt").write_text(profiler.collapsed())

    Samples *all* threads except its own; each stack is prefixed with a
    ``thread:<name>`` frame so per-thread flamegraphs separate cleanly.
    ``interval`` is the target sampling period (default 10 ms ≈ 100 Hz).
    """

    def __init__(self, interval: float = 0.01) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.samples: dict[str, int] = {}
        self.sample_count = 0
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already running")
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sample-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop_event.set()
        thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def run_for(self, seconds: float) -> str:
        """Sample for ``seconds`` then return the collapsed stacks
        (the fleet's ``POST /links/<id>/profile`` path)."""
        self.start()
        try:
            time.sleep(seconds)
        finally:
            self.stop()
        return self.collapsed()

    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop_event.wait(self.interval):
            self._take_sample(own_id)

    def _take_sample(self, own_id: int) -> None:
        names = {t.ident: t.name for t in threading.enumerate()}
        frames = sys._current_frames()
        with self._lock:
            self.sample_count += 1
            for thread_id, frame in frames.items():
                if thread_id == own_id:
                    continue
                parts = []
                while frame is not None:
                    code = frame.f_code
                    parts.append(
                        f"{Path(code.co_filename).stem}:{code.co_name}"
                    )
                    frame = frame.f_back
                parts.append(f"thread:{names.get(thread_id, thread_id)}")
                key = ";".join(reversed(parts))
                self.samples[key] = self.samples.get(key, 0) + 1

    def collapsed(self) -> str:
        """Collapsed-stack text: one ``stack count`` line per distinct
        stack, heaviest first (``flamegraph.pl``/speedscope input)."""
        with self._lock:
            items = sorted(self.samples.items(),
                           key=lambda kv: (-kv[1], kv[0]))
        return "".join(f"{stack} {count}\n" for stack, count in items)

    def write(self, path: str | Path) -> None:
        Path(path).write_text(self.collapsed(), encoding="utf-8")


# -- benchmark provenance -----------------------------------------------------

#: Schema identifier stamped into every benchmark JSON document.
BENCH_SCHEMA = "repro-bench/1"


class BenchSchemaError(ValueError):
    """Raised when a benchmark document does not match ``repro-bench/1``."""


def env_fingerprint() -> dict[str, Any]:
    """The environment a benchmark ran under: python, platform, CPU
    count, numpy presence/version, git sha (each ``None`` if unknown)."""
    try:
        import numpy
        numpy_version: str | None = numpy.__version__
    except ImportError:
        numpy_version = None
    try:
        git_sha: str | None = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5.0, check=True,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        git_sha = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
        "git_sha": git_sha,
    }


def bench_document(
    name: str,
    metrics: dict[str, dict[str, Any]],
    stages: dict[str, float] | None = None,
    env: dict[str, Any] | None = None,
    created: float | None = None,
) -> dict[str, Any]:
    """Build (and validate) a ``repro-bench/1`` document.

    ``metrics`` maps metric name → ``{"value": float, "unit": str,
    "higher_is_better": bool}``; ``stages`` is an optional ``{stage
    name: seconds}`` breakdown (a :meth:`PipelineProfile.stage_seconds`
    snapshot).
    """
    doc = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "created": time.time() if created is None else created,
        "env": env_fingerprint() if env is None else env,
        "metrics": metrics,
        "stages": dict(stages) if stages else {},
    }
    validate_bench(doc)
    return doc


def validate_bench(doc: Any) -> dict[str, Any]:
    """Check ``doc`` against ``repro-bench/1``; raises
    :class:`BenchSchemaError` naming the first offending field."""
    if not isinstance(doc, dict):
        raise BenchSchemaError("benchmark document must be a JSON object")
    schema = doc.get("schema")
    if schema != BENCH_SCHEMA:
        raise BenchSchemaError(
            f"unsupported schema {schema!r} (expected {BENCH_SCHEMA!r})"
        )
    for field in ("name", "env", "metrics"):
        if field not in doc:
            raise BenchSchemaError(f"missing field {field!r}")
    if not isinstance(doc["name"], str) or not doc["name"]:
        raise BenchSchemaError("'name' must be a non-empty string")
    if not isinstance(doc["env"], dict):
        raise BenchSchemaError("'env' must be an object")
    metrics = doc["metrics"]
    if not isinstance(metrics, dict) or not metrics:
        raise BenchSchemaError("'metrics' must be a non-empty object")
    for metric_name, entry in metrics.items():
        if not isinstance(entry, dict):
            raise BenchSchemaError(f"metric {metric_name!r} must be an object")
        value = entry.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise BenchSchemaError(
                f"metric {metric_name!r} needs a numeric 'value'"
            )
        if not isinstance(entry.get("unit", ""), str):
            raise BenchSchemaError(f"metric {metric_name!r} 'unit' must be a string")
        if not isinstance(entry.get("higher_is_better", True), bool):
            raise BenchSchemaError(
                f"metric {metric_name!r} 'higher_is_better' must be a bool"
            )
    stages = doc.get("stages", {})
    if not isinstance(stages, dict):
        raise BenchSchemaError("'stages' must be an object")
    for stage, seconds in stages.items():
        if not isinstance(seconds, (int, float)) or isinstance(seconds, bool):
            raise BenchSchemaError(f"stage {stage!r} must map to seconds")
    return doc


def write_bench(path: str | Path, doc: dict[str, Any]) -> Path:
    """Validate and write a benchmark document as pretty JSON."""
    validate_bench(doc)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_bench(path: str | Path) -> dict[str, Any]:
    """Load and validate a benchmark document.

    Raises :class:`BenchSchemaError` for unparseable JSON or any shape
    mismatch (so CLI callers have one exception to map to exit 2).
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise BenchSchemaError(f"cannot read {path}: {exc}") from exc
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BenchSchemaError(f"{path} is not valid JSON: {exc}") from exc
    return validate_bench(doc)


class MetricDelta:
    """One metric's baseline → current movement."""

    __slots__ = ("name", "baseline", "current", "unit",
                 "higher_is_better", "change", "status")

    def __init__(self, name: str, baseline: float | None,
                 current: float | None, unit: str,
                 higher_is_better: bool, threshold: float) -> None:
        self.name = name
        self.baseline = baseline
        self.current = current
        self.unit = unit
        self.higher_is_better = higher_is_better
        if baseline is None:
            self.change = None
            self.status = "added"
        elif current is None:
            self.change = None
            self.status = "removed"
        else:
            self.change = ((current - baseline) / baseline
                           if baseline else 0.0)
            worse = -self.change if higher_is_better else self.change
            if worse > threshold:
                self.status = "regression"
            elif worse < -threshold:
                self.status = "improved"
            else:
                self.status = "ok"

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "baseline": self.baseline,
            "current": self.current,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "change": self.change,
            "status": self.status,
        }


class BenchComparison:
    """The outcome of :func:`compare_benchmarks`."""

    def __init__(self, baseline_name: str, current_name: str,
                 threshold: float, deltas: list[MetricDelta]) -> None:
        self.baseline_name = baseline_name
        self.current_name = current_name
        self.threshold = threshold
        self.deltas = deltas

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """A fixed-width comparison table, one line per metric."""
        lines = [
            f"benchmark compare: {self.baseline_name} -> "
            f"{self.current_name} (threshold {self.threshold:.0%})",
            f"{'metric':<40} {'baseline':>14} {'current':>14} "
            f"{'change':>9}  status",
        ]
        for delta in self.deltas:
            base = "-" if delta.baseline is None else f"{delta.baseline:,.2f}"
            cur = "-" if delta.current is None else f"{delta.current:,.2f}"
            change = ("-" if delta.change is None
                      else f"{delta.change:+.1%}")
            name = delta.name if not delta.unit else (
                f"{delta.name} [{delta.unit}]"
            )
            lines.append(f"{name:<40} {base:>14} {cur:>14} "
                         f"{change:>9}  {delta.status}")
        return "\n".join(lines)


def compare_benchmarks(baseline: dict[str, Any], current: dict[str, Any],
                       threshold: float = 0.1) -> BenchComparison:
    """Diff two validated benchmark documents metric by metric.

    A metric regressed when it moved in its *bad* direction (per its
    ``higher_is_better`` flag in the baseline, default True) by more
    than ``threshold`` (fractional; 0.1 = 10%).  Metrics present in only
    one document are reported as ``added``/``removed``, never as
    regressions.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    validate_bench(baseline)
    validate_bench(current)
    deltas: list[MetricDelta] = []
    base_metrics = baseline["metrics"]
    cur_metrics = current["metrics"]
    for name in list(base_metrics) + [
        n for n in cur_metrics if n not in base_metrics
    ]:
        base = base_metrics.get(name)
        cur = cur_metrics.get(name)
        ref = base if base is not None else cur
        deltas.append(MetricDelta(
            name,
            None if base is None else float(base["value"]),
            None if cur is None else float(cur["value"]),
            str(ref.get("unit", "")),
            bool(ref.get("higher_is_better", True)),
            threshold,
        ))
    return BenchComparison(baseline.get("name", "baseline"),
                           current.get("name", "current"),
                           threshold, deltas)


def render_comparison(baseline_path: str | Path, current_path: str | Path,
                      threshold: float = 0.1,
                      out: IO[str] | None = None) -> int:
    """Load, compare, print; returns the ``repro perf compare`` exit
    code: 0 ok, 1 regression beyond threshold.  Schema problems raise
    :class:`BenchSchemaError` (the CLI maps that to exit 2)."""
    comparison = compare_benchmarks(load_bench(baseline_path),
                                    load_bench(current_path), threshold)
    print(comparison.render(), file=out or sys.stdout)
    return 0 if comparison.ok else 1
