"""Live monitoring glue: recorder + alert engine + shared state.

:class:`LiveMonitor` is the single object the scrape server, the
dashboard renderer, and the detection loop share.  The detection loop
feeds it records and emitted loops; it maintains the windowed recorder,
samples registry counters and evaluates alert rules on **minute
boundaries of trace time**, and serves a consistent JSON state snapshot
to whoever asks (the ``/state`` endpoint, the dashboard, tests).

Thread model: the feed runs on the detection thread; ``/state`` and
``/metrics`` are served from HTTP handler threads.  All recorder and
alert mutation happens under one lock, and :meth:`state` takes the same
lock, so a scrape sees a window-consistent view.  The per-record
critical section is a few dict increments — boundary work (counter
sampling, rule evaluation) runs once per trace minute, never per
packet.

Out-of-order feeds are tolerated, not fatal: the streaming detector
already rejects time-travel on its own input, but simulator live taps
may deliver ties in scheduler order — the monitor counts regressions
(``out_of_order``) and still banks the observation into its (correct)
older bucket.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.core import vectorize
from repro.obs.alerts import Alert, AlertEngine
from repro.obs.recorder import WindowedRecorder
from repro.obs.tracing import NULL_TRACER

StateSource = Callable[[], Any]


class LiveMonitor:
    """Shared live-monitoring state for one detection run."""

    def __init__(
        self,
        registry=None,
        alert_engine: AlertEngine | None = None,
        recorder: WindowedRecorder | None = None,
        tracer=NULL_TRACER,
    ) -> None:
        self.registry = registry
        self.recorder = recorder or WindowedRecorder()
        self.alerts = alert_engine or AlertEngine(tracer=tracer)
        if registry is not None:
            self.alerts.register_metrics(registry)
        self._lock = threading.Lock()
        self._state_sources: dict[str, StateSource] = {}
        self._last_minute: int | None = None
        self.out_of_order = 0
        self.finished = False
        self._count_fn: Callable[[], int] | None = None
        self._last_total = 0
        self._next_second = float("-inf")

    # -- wiring ----------------------------------------------------------------

    def add_state_source(self, name: str, source: StateSource) -> None:
        """Expose ``source()`` (a JSON-ready callable, e.g. the
        streaming detector's ``state_snapshot``) under ``name`` in
        :meth:`state`."""
        self._state_sources[name] = source

    # -- feed (detection thread) -----------------------------------------------
    #
    # Two feeding styles, pick one per run:
    #
    # * Direct: call :meth:`observe_record` per record.  Simple, exact,
    #   takes the lock per record — fine for simulator taps and
    #   post-hoc feeds.
    # * Sampled: :meth:`set_record_source` + a ``timestamp >=
    #   monitor.next_boundary`` check in the hot loop that calls
    #   :meth:`sample` only when a second boundary is crossed.  The
    #   per-record cost is one float compare; the record counts come
    #   from differencing the source counter on boundaries.  Because
    #   detector feeds are time-ordered, every delta belongs entirely
    #   to the just-completed second, so the windows are exact.

    def set_record_source(self, count_fn: Callable[[], int]) -> None:
        """Use ``count_fn()`` (e.g. ``lambda: detector.stats.records``)
        as the record counter for boundary sampling.  Do not mix with
        per-record :meth:`observe_record` calls in the same run."""
        with self._lock:
            self._count_fn = count_fn
            self._last_total = count_fn()

    @property
    def next_boundary(self) -> float:
        """The trace time at which the hot loop should next call
        :meth:`sample` (-inf before the first sample)."""
        return self._next_second

    def sample(self, timestamp: float) -> float:
        """Bank records counted since the previous sample into the
        just-completed second and run any due boundary work.

        Call with the first record timestamp that is ``>=
        next_boundary`` — *before* processing that record — and store
        the returned next boundary.  Deltas are banked at
        ``next_boundary - 1``, the second every pending record belongs
        to on an ordered feed.
        """
        with self._lock:
            self._sample_locked(timestamp)
            self._next_second = float(int(timestamp)) + 1.0
            return self._next_second

    def _sample_locked(self, now: float) -> None:
        if self._count_fn is None or self._next_second == float("-inf"):
            return
        total = self._count_fn()
        delta = total - self._last_total
        self._last_total = total
        if delta <= 0:
            return
        banked_at = self._next_second - 1.0
        self.recorder.observe_records(banked_at, delta)
        minute = int(banked_at // 60.0)
        if self._last_minute is None:
            self._last_minute = minute
        elif minute > self._last_minute:
            self._last_minute = minute
            self._on_boundary(now)

    def observe_record(self, timestamp: float) -> None:
        """Count one captured record; runs boundary work when the
        record's minute advances past the previous one."""
        with self._lock:
            minute = int(timestamp // 60.0)
            if self._last_minute is None:
                self._last_minute = minute
            elif minute > self._last_minute:
                self._last_minute = minute
                self._on_boundary(timestamp)
            elif minute < self._last_minute:
                self.out_of_order += 1
            self.recorder.observe_record(timestamp)

    def observe_loop(self, loop) -> None:
        """Record an emitted :class:`~repro.core.merge.RoutingLoop`."""
        with self._lock:
            self.recorder.observe_loop(loop)

    def on_loop(self, loop) -> None:
        """Alias usable directly as a detector's ``on_loop`` callback."""
        self.observe_loop(loop)

    def finish(self) -> None:
        """End of feed: close the final minute so its windows alert."""
        with self._lock:
            if self.finished:
                return
            self.finished = True
            # Bank any records still pending in a sampled feed: they
            # all belong to the last open second (no record crossed
            # its boundary, or it would have been sampled).
            if self._next_second != float("-inf"):
                self._sample_locked(self._next_second)
            if self.recorder.now != float("-inf"):
                # Evaluate one minute past the last record so the final
                # (partial) window counts as closed.
                self._on_boundary(self.recorder.now + 60.0)

    def _on_boundary(self, now: float) -> list[Alert]:
        # Called with the lock held.
        if self.registry is not None:
            self.recorder.sample_counters(self.registry)
        return self.alerts.evaluate(self.recorder, now)

    # -- serving (HTTP handler threads) ----------------------------------------

    def state(self) -> dict[str, Any]:
        """A window-consistent JSON-ready snapshot of everything the
        monitor knows."""
        with self._lock:
            state: dict[str, Any] = {
                "recorder": self.recorder.snapshot(),
                "alerts": self.alerts.snapshot(),
                "out_of_order": self.out_of_order,
                "finished": self.finished,
            }
            for name, source in self._state_sources.items():
                state[name] = source()
        return state

    def samples(self) -> dict[str, tuple]:
        """Consistent copies of the recorder's bounded CDF samples
        (for the dashboard's Fig. 3/4/8/9 panels)."""
        with self._lock:
            recorder = self.recorder
            return {
                "stream_sizes": tuple(recorder.stream_sizes),
                "stream_durations": tuple(recorder.stream_durations),
                "replica_spacings": tuple(recorder.replica_spacings),
                "loop_durations": tuple(
                    row["duration"] for row in recorder.loops
                ),
            }

    def render_prometheus(self) -> str:
        """The registry's exposition text ('' without a registry)."""
        if self.registry is None:
            return ""
        return self.registry.render_prometheus()


# -- monitored streaming feeds -------------------------------------------------
#
# The CLI's `monitor` hot loop and the fleet daemon's per-link pipelines
# drive the exact same monitored feed; these helpers keep them
# byte-identical instead of two hand-copied loops.


def attach_detector(monitor: LiveMonitor, streaming) -> None:
    """Wire a :class:`~repro.core.streaming.StreamingLoopDetector` to
    the monitor: expose its state snapshot under ``detector``, chain its
    ``on_loop`` callback into the recorder, and use its record counter
    as the boundary-sampling source."""
    monitor.add_state_source("detector", streaming.state_snapshot)
    previous = streaming.on_loop
    if previous is None:
        streaming.on_loop = monitor.on_loop
    else:
        def chained(loop, _inner=previous):
            monitor.observe_loop(loop)
            _inner(loop)

        streaming.on_loop = chained
    monitor.set_record_source(lambda: streaming.stats.records)


def feed_pairs(streaming, monitor: LiveMonitor, pairs) -> list:
    """Feed ``(timestamp, data)`` pairs through the detector with
    window-boundary sampling; returns the loops that closed.

    The per-record monitoring cost is one float compare — record counts
    come from differencing the detector's own counter on second
    boundaries (see :meth:`LiveMonitor.sample`).  Safe to call
    repeatedly with successive batches of one ordered feed; call
    :meth:`~repro.core.streaming.StreamingLoopDetector.flush` and
    :meth:`LiveMonitor.finish` after the last batch.
    """
    boundary = monitor.next_boundary
    sample = monitor.sample
    process = streaming.process
    loops: list = []
    extend = loops.extend
    for timestamp, data in pairs:
        if timestamp >= boundary:
            boundary = sample(timestamp)
        extend(process(timestamp, data))
    return loops


def feed_chunk(streaming, monitor: LiveMonitor, chunk) -> list:
    """Chunk-native :func:`feed_pairs`: feed one
    :class:`~repro.net.columnar.ColumnarChunk` with window-boundary
    sampling; returns the loops that closed.

    Keeps the exact sampling contract of the per-record loop — one
    float compare per boundary decision, :meth:`LiveMonitor.sample`
    called with the first record timestamp at or past the boundary,
    *before* that record is processed — by splitting the chunk at
    boundary crossings (a ``searchsorted`` per crossing) and feeding
    each zero-copy sub-chunk through
    :meth:`~repro.core.streaming.StreamingLoopDetector.process_chunk`,
    so the detector's batched tier stays engaged between crossings.
    Unsorted chunks (and numpy-less interpreters) delegate to
    :func:`feed_pairs`, which behaves identically record by record.
    """
    n = len(chunk)
    if n == 0:
        return []
    if not vectorize.HAVE_NUMPY:
        return feed_pairs(streaming, monitor, chunk.iter_views())
    np = vectorize.np
    ts = np.frombuffer(chunk.timestamps, dtype=np.float64, count=n)
    if n > 1 and bool((np.diff(ts) < 0).any()):
        return feed_pairs(streaming, monitor, chunk.iter_views())
    boundary = monitor.next_boundary
    loops: list = []
    pos = 0
    while pos < n:
        first = float(ts[pos])
        if first >= boundary:
            boundary = monitor.sample(first)
        stop = int(np.searchsorted(ts, boundary, side="left"))
        if stop <= pos:
            stop = pos + 1
        sub = chunk if stop - pos == n else chunk.slice(pos, stop)
        loops.extend(streaming.process_chunk(sub))
        pos = stop
    return loops
