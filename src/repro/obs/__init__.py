"""Unified observability layer: metrics, tracing, lifecycle correlation.

The paper's contribution is *observing* transient routing loops from the
data plane; this package makes the reproduction itself observable.  It
has four pieces, designed to be wired through every subsystem (simulator
control plane, offline/streaming/parallel detectors, capture monitors,
CLI) with **zero cost when disabled**:

* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, and fixed-bucket histograms with Prometheus-style text
  exposition and JSON snapshot export.  A disabled registry hands out
  module-level null singletons, so instrumented code pays one no-op
  method call at most — and hot loops (the forwarding engine's
  ``_arrive``) keep their plain-int counters and publish through pull
  collectors at export time, paying nothing per packet.
* :mod:`repro.obs.tracing` — a span/event tracer emitting JSONL with
  monotonic timestamps (simulation time in the simulator, wall time in
  the detection pipeline, tagged per record).  The control plane emits
  the full convergence pipeline (link failure → adjacency loss → LSA
  flood → SPF → FIB install) and the detectors emit phase spans and
  per-loop intervals into the same trace.
* :mod:`repro.obs.lifecycle` — joins control-plane events with detected
  loop intervals to answer the paper's central question per loop: which
  failure caused it, and how its duration decomposes into convergence
  phases.
* :mod:`repro.obs.progress` / :mod:`repro.obs.log` — heartbeat
  reporting for long runs and the shared ``repro`` logger.
"""

from repro.obs.alerts import Alert, AlertEngine, AlertRule, default_rules
from repro.obs.dashboard import render_ascii, render_html
from repro.obs.lifecycle import (
    LifecycleReport,
    LoopLifecycle,
    correlate_lifecycles,
)
from repro.obs.live import LiveMonitor
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    parse_prometheus,
    set_registry,
)
from repro.obs.progress import Heartbeat
from repro.obs.recorder import BoundedBucketSeries, WindowedRecorder
from repro.obs.server import MonitorServer
from repro.obs.tracing import NULL_TRACER, Tracer, read_trace

__all__ = [
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_TRACER",
    "Alert",
    "AlertEngine",
    "AlertRule",
    "BoundedBucketSeries",
    "Counter",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "LifecycleReport",
    "LiveMonitor",
    "LoopLifecycle",
    "MetricsRegistry",
    "MonitorServer",
    "Tracer",
    "WindowedRecorder",
    "configure_logging",
    "correlate_lifecycles",
    "default_rules",
    "get_logger",
    "get_registry",
    "parse_prometheus",
    "read_trace",
    "render_ascii",
    "render_html",
    "set_registry",
]
