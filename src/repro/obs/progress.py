"""Heartbeat progress reporting for long-running pipeline stages.

A :class:`Heartbeat` is handed to chunked readers / batch runners as a
plain ``callable(count)``; it rate-limits itself with
:func:`time.monotonic` so callers can invoke it per chunk without
flooding the log.  Output goes through the ``repro.progress`` logger at
INFO level — visible with ``--progress`` (which also lowers the log
level for this logger only).
"""

from __future__ import annotations

import logging
import time
from typing import Callable

from repro.obs.log import get_logger


class Heartbeat:
    """Rate-limited progress reporter.

    >>> beat = Heartbeat("records", interval=5.0)
    >>> for chunk in chunks:
    ...     beat.tick(len(chunk))      # logs at most every 5 s
    >>> beat.done()                    # always logs the final total
    """

    __slots__ = ("label", "interval", "count", "_t0", "_last",
                 "_logger", "_clock")

    def __init__(self, label: str, interval: float = 5.0,
                 logger: logging.Logger | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.label = label
        self.interval = interval
        self.count = 0
        self._clock = clock
        self._t0 = clock()
        self._last = self._t0
        self._logger = logger or get_logger("progress")

    def __call__(self, amount: int = 1) -> None:
        self.tick(amount)

    def tick(self, amount: int = 1) -> None:
        """Add ``amount`` to the running count; maybe log."""
        self.count += amount
        now = self._clock()
        if now < self._last:
            # Non-monotonic clock (a fake clock in tests, or a clock
            # swap): re-anchor instead of going silent until the old
            # watermark is reached again.
            self._last = now
            self._t0 = min(self._t0, now)
            return
        if now - self._last >= self.interval:
            self._last = now
            self._log(now)

    def done(self) -> None:
        """Log the final summary unconditionally — even when no tick was
        ever recorded, so every stage leaves a closing line."""
        self._log(self._clock(), final=True)

    def _log(self, now: float, final: bool = False) -> None:
        # Clamp: a clock running backwards must not report a negative
        # elapsed time or rate.
        elapsed = max(0.0, now - self._t0)
        rate = self.count / elapsed if elapsed > 0 else 0.0
        self._logger.info(
            "%s%s: %d in %.1fs (%.0f/s)",
            "done, " if final else "", self.label, self.count,
            elapsed, rate,
        )


def enable_progress_logging() -> None:
    """Make heartbeat INFO lines visible even at the default warning
    level, without revealing unrelated info chatter."""
    get_logger("progress").setLevel(logging.INFO)
