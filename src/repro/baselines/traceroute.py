"""Traceroute-based loop detection (the Paxson '97 approach).

A prober attached to one router runs periodic traceroute sessions toward a
set of destinations: one UDP probe per TTL value, watching for ICMP
time-exceeded responses whose source reveals the router at each hop.  A
*loop* is a router appearing twice in one session's path.

This is exactly the methodology the paper contrasts with passive trace
analysis (Sec. III): it can only see a transient loop if a session happens
to straddle the convergence window, and lost responses (ICMP rate
limiting) blur even that.  The baseline bench measures its recall against
the passive detector on identical ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.packet import (
    ICMP_TIME_EXCEEDED,
    IPPROTO_ICMP,
    IPv4Header,
    Packet,
    UdpHeader,
)
from repro.routing.bgp import BgpProcess
from repro.routing.forwarding import ForwardingEngine


class TracerouteError(ValueError):
    """Raised for invalid prober configuration."""


@dataclass(slots=True)
class TraceroutePath:
    """One completed traceroute session."""

    target: IPv4Address
    started_at: float
    hops: dict[int, IPv4Address] = field(default_factory=dict)

    def path(self) -> list[IPv4Address | None]:
        """Responding router per TTL, ``None`` for missing responses."""
        if not self.hops:
            return []
        max_ttl = max(self.hops)
        return [self.hops.get(ttl) for ttl in range(1, max_ttl + 1)]

    def has_loop(self) -> bool:
        """True when some router answered for two different TTLs."""
        seen: set[int] = set()
        for address in self.hops.values():
            if address.value in seen:
                return True
            seen.add(address.value)
        return False


@dataclass(slots=True)
class _Session:
    path: TraceroutePath
    pending: int


class TracerouteBaseline:
    """Periodic traceroute prober attached to one router.

    Must be constructed *before* ``bgp.start()`` so its return prefix is
    originated at the probe router (responses need a route back).
    """

    #: Classic traceroute destination port base.
    _BASE_PORT = 33434

    def __init__(
        self,
        engine: ForwardingEngine,
        bgp: BgpProcess,
        router: str,
        targets: list[IPv4Address],
        interval: float = 60.0,
        max_ttl: int = 24,
        probe_spacing: float = 0.05,
        rng: random.Random | None = None,
        probe_prefix: IPv4Prefix | None = None,
    ) -> None:
        if not targets:
            raise TracerouteError("no targets")
        if interval <= 0:
            raise TracerouteError("interval must be positive")
        if not 1 <= max_ttl <= 255:
            raise TracerouteError(f"max_ttl out of range: {max_ttl}")
        self.engine = engine
        self.router = router
        self.targets = targets
        self.interval = interval
        self.max_ttl = max_ttl
        self.probe_spacing = probe_spacing
        self.rng = rng or random.Random(0)
        self.probe_prefix = probe_prefix or IPv4Prefix.parse("203.0.113.0/24")
        self.source = self.probe_prefix.random_address(self.rng)
        bgp.originate(self.probe_prefix, router)
        engine.add_delivery_listener(self._on_delivery)

        self.sessions: list[TraceroutePath] = []
        self._open: dict[int, _Session] = {}  # ip id -> session
        self._next_id = self.rng.randrange(0x8000)
        self.probes_sent = 0
        self.responses_received = 0

    # -- scheduling ------------------------------------------------------------

    def run(self, start: float, end: float) -> None:
        """Schedule sessions every ``interval`` seconds over [start, end)."""
        when = start
        while when < end:
            self.engine.scheduler.schedule_at(
                when, lambda t=when: self._start_round(t)
            )
            when += self.interval

    def _start_round(self, when: float) -> None:
        for target in self.targets:
            self._start_session(target)

    def _start_session(self, target: IPv4Address) -> None:
        now = self.engine.scheduler.now
        path = TraceroutePath(target=target, started_at=now)
        session = _Session(path=path, pending=self.max_ttl)
        offset = 0.0
        for ttl in range(1, self.max_ttl + 1):
            probe_id = self._next_probe_id()
            self._open[probe_id] = session
            packet = self._probe_packet(target, ttl, probe_id)
            self.engine.scheduler.schedule(
                offset, lambda p=packet: self._send(p)
            )
            offset += self.probe_spacing
        # Close the session once all responses had time to return.
        self.engine.scheduler.schedule(
            offset + 5.0, lambda s=session: self._close(s)
        )

    def _send(self, packet: Packet) -> None:
        self.probes_sent += 1
        self.engine.inject(packet, self.router)

    def _probe_packet(self, target: IPv4Address, ttl: int,
                      probe_id: int) -> Packet:
        ip = IPv4Header(src=self.source, dst=target, ttl=ttl,
                        identification=probe_id)
        udp = UdpHeader(src_port=self.rng.randint(32768, 60999),
                        dst_port=self._BASE_PORT + ttl)
        return Packet.build(ip, udp, b"")

    def _next_probe_id(self) -> int:
        self._next_id = (self._next_id + 1) & 0xFFFF
        return self._next_id

    # -- response handling ----------------------------------------------------------

    def _on_delivery(self, time: float, packet: Packet, router: str) -> None:
        if router != self.router:
            return
        if packet.ip.protocol != IPPROTO_ICMP or packet.l4 is None:
            return
        if getattr(packet.l4, "icmp_type", None) != ICMP_TIME_EXCEEDED:
            return
        if packet.ip.dst != self.source:
            return
        quoted = packet.payload
        if len(quoted) < 20:
            return
        probe_id = int.from_bytes(quoted[4:6], "big")
        probe_ttl = quoted[8]
        session = self._open.get(probe_id)
        if session is None:
            return
        self.responses_received += 1
        # The quoted TTL is the probe's *initial* TTL: probes expire after
        # exactly that many hops, so it indexes the hop that answered.
        session.path.hops[probe_ttl] = packet.ip.src

    def _close(self, session: _Session) -> None:
        stale = [probe_id for probe_id, open_session in self._open.items()
                 if open_session is session]
        for probe_id in stale:
            del self._open[probe_id]
        self.sessions.append(session.path)

    # -- results -----------------------------------------------------------------------

    def loop_observations(self) -> list[TraceroutePath]:
        """Sessions whose path shows a repeated router."""
        return [path for path in self.sessions if path.has_loop()]
