"""Active ICMP-echo probing (the Labovitz et al. methodology).

Sends ping probes to a set of destinations at a fixed rate and records,
per time bucket, how many were delivered and with what one-way delay.
Labovitz used this around injected path failures to show loss and latency
spikes during convergence; the baseline bench reproduces that shape on
the simulated backbone (loss spikes while loops are active, elevated
latency for probes that escape).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.packet import ICMP_ECHO_REQUEST, IcmpHeader, IPv4Header, Packet
from repro.routing.forwarding import ForwardingEngine
from repro.stats.timeseries import BucketSeries


class ProbingError(ValueError):
    """Raised for invalid probing configuration."""


@dataclass(slots=True)
class PingSummary:
    """Aggregated probe outcome."""

    sent: int
    delivered: int
    loss_by_bucket: dict[int, float]
    mean_delay_by_bucket: dict[int, float]

    @property
    def delivery_fraction(self) -> float:
        if self.sent == 0:
            return 0.0
        return self.delivered / self.sent

    @property
    def peak_loss(self) -> float:
        return max(self.loss_by_bucket.values(), default=0.0)


class PingProbe:
    """A periodic one-way ping prober injected at one router."""

    def __init__(
        self,
        engine: ForwardingEngine,
        router: str,
        targets: list[IPv4Address],
        rate_pps: float = 2.0,
        bucket_width: float = 10.0,
        rng: random.Random | None = None,
        source: IPv4Address | None = None,
    ) -> None:
        if not targets:
            raise ProbingError("no targets")
        if rate_pps <= 0:
            raise ProbingError("rate must be positive")
        self.engine = engine
        self.router = router
        self.targets = targets
        self.rate_pps = rate_pps
        self.bucket_width = bucket_width
        self.rng = rng or random.Random(0)
        self.source = source or IPv4Address.parse("203.0.113.200")

        self._sent = BucketSeries(width=bucket_width)
        self._delivered = BucketSeries(width=bucket_width)
        self._delay_sum = BucketSeries(width=bucket_width)
        self._sequence = 0
        self._identifier = self.rng.randrange(0x10000)
        self._end = 0.0
        self.sent = 0
        self.delivered = 0

    def run(self, start: float, end: float) -> None:
        """Schedule probes at fixed spacing over [start, end)."""
        if end <= start:
            raise ProbingError("end must exceed start")
        self._end = end
        self.engine.scheduler.schedule_at(start, self._probe)

    def _probe(self) -> None:
        now = self.engine.scheduler.now
        target = self.targets[self._sequence % len(self.targets)]
        self._sequence += 1
        ip = IPv4Header(src=self.source, dst=target, ttl=64,
                        identification=self._sequence & 0xFFFF)
        icmp = IcmpHeader(icmp_type=ICMP_ECHO_REQUEST,
                          identifier=self._identifier,
                          sequence=self._sequence & 0xFFFF)
        packet = Packet.build(ip, icmp, b"\x00" * 32)
        self.sent += 1
        self._sent.add(now)
        audit = self.engine.inject(packet, self.router)
        if audit is not None:
            self._watch(audit, now)
        next_time = now + 1.0 / self.rate_pps
        if next_time < self._end:
            self.engine.scheduler.schedule_at(next_time, self._probe)

    def _watch(self, audit, sent_at: float) -> None:
        """Poll the audit shortly after injection to score the probe.

        Probes resolve in at most a few seconds (TTL 64, millisecond
        hops); checking 10 s later is safely past any outcome.
        """
        def check() -> None:
            from repro.routing.forwarding import PacketFate

            if audit.fate is PacketFate.DELIVERED:
                self.delivered += 1
                self._delivered.add(sent_at)
                self._delay_sum.add(sent_at, audit.transit_time)

        self.engine.scheduler.schedule(10.0, check)

    def summary(self) -> PingSummary:
        """Per-bucket loss fraction and mean delay."""
        loss: dict[int, float] = {}
        delay: dict[int, float] = {}
        for bucket, sent in self._sent.counts.items():
            delivered = self._delivered.get(bucket)
            loss[bucket] = 1.0 - (delivered / sent) if sent else 0.0
            if delivered:
                delay[bucket] = self._delay_sum.get(bucket) / delivered
        return PingSummary(
            sent=self.sent,
            delivered=self.delivered,
            loss_by_bucket=loss,
            mean_delay_by_bucket=delay,
        )
