"""Active-measurement baselines the paper compares against.

* :mod:`repro.baselines.traceroute` — Paxson-style periodic traceroutes;
  detects a loop when a router repeats within one probe session.  The
  paper argues such end-to-end probing is error-prone for transient loops;
  the baseline bench quantifies exactly how much it misses.
* :mod:`repro.baselines.probing` — Labovitz-style ICMP echo probing that
  measures per-interval probe loss and latency around routing events.
"""

from repro.baselines.traceroute import TracerouteBaseline, TraceroutePath
from repro.baselines.probing import PingProbe, PingSummary

__all__ = [
    "TracerouteBaseline",
    "TraceroutePath",
    "PingProbe",
    "PingSummary",
]
