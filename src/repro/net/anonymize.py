"""Prefix-preserving trace anonymization.

Traces like the paper's cannot be shared raw: addresses identify
customers.  The era's tools (tcpdpriv ``-A50``, Crypto-PAn) solved this
with *prefix-preserving* anonymization: if two addresses share their
first k bits, their anonymized forms share exactly their first k bits
too.  This module implements the scheme from scratch with a keyed
pseudo-random function (HMAC-SHA256 over address prefixes).

The property that matters here: prefix preservation keeps the loop
detector's output isomorphic — replica matching compares whole headers,
and validation/merging group by destination /24, both of which survive
the mapping.  ``tests/property/test_property_anonymize.py`` checks that
detection on an anonymized trace finds the same loops (modulo renamed
prefixes) as on the original.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.net.addr import IPv4Address
from repro.net.checksum import internet_checksum
from repro.net.packet import IPPROTO_TCP, IPPROTO_UDP
from repro.net.trace import Trace, TraceRecord


class AnonymizerError(ValueError):
    """Raised for invalid anonymizer usage."""


class PrefixPreservingAnonymizer:
    """Keyed, deterministic, prefix-preserving IPv4 address mapping.

    For each bit position i, the anonymized bit is the original bit
    XORed with a pseudo-random function of the (i-bit) prefix above it —
    the Crypto-PAn construction.  Deterministic for a given key, and
    structure-preserving: longest-common-prefix lengths are invariant.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise AnonymizerError("key must be at least 16 bytes")
        self._key = key
        self._cache: dict[int, int] = {}

    def anonymize_address(self, address: IPv4Address) -> IPv4Address:
        """Map one address (memoized)."""
        value = address.value
        cached = self._cache.get(value)
        if cached is not None:
            return IPv4Address(cached)
        result = 0
        for bit_index in range(32):
            shift = 31 - bit_index
            prefix = value >> (shift + 1)
            original_bit = (value >> shift) & 1
            flip = self._prf_bit(bit_index, prefix)
            result = (result << 1) | (original_bit ^ flip)
        self._cache[value] = result
        return IPv4Address(result)

    def _prf_bit(self, bit_index: int, prefix: int) -> int:
        message = bit_index.to_bytes(1, "big") + prefix.to_bytes(4, "big")
        digest = hmac.new(self._key, message, hashlib.sha256).digest()
        return digest[0] & 1

    # -- packet / trace level ---------------------------------------------------

    def anonymize_record(self, record: TraceRecord) -> TraceRecord:
        """Rewrite src/dst addresses in a captured record.

        The IP header checksum is recomputed so anonymized records stay
        wire-valid; the TCP/UDP checksum is *adjusted by the same
        address delta* (their pseudo-header covers the addresses), which
        keeps the detector's payload-equality surrogate intact.
        """
        data = record.data
        if len(data) < 20:
            return record
        src = IPv4Address.from_bytes(data[12:16])
        dst = IPv4Address.from_bytes(data[16:20])
        new_src = self.anonymize_address(src)
        new_dst = self.anonymize_address(dst)
        mutable = bytearray(data)
        mutable[12:16] = new_src.packed
        mutable[16:20] = new_dst.packed
        # Recompute the IP header checksum over the rewritten header.
        mutable[10:12] = b"\x00\x00"
        checksum = internet_checksum(bytes(mutable[:20]))
        mutable[10:12] = checksum.to_bytes(2, "big")
        self._fix_l4_checksum(mutable, src, dst, new_src, new_dst)
        return TraceRecord(timestamp=record.timestamp,
                           data=bytes(mutable),
                           wire_length=record.wire_length)

    def _fix_l4_checksum(self, data: bytearray, src: IPv4Address,
                         dst: IPv4Address, new_src: IPv4Address,
                         new_dst: IPv4Address) -> None:
        protocol = data[9]
        ihl = (data[0] & 0xF) * 4
        if protocol == IPPROTO_TCP:
            offset = ihl + 16
        elif protocol == IPPROTO_UDP:
            offset = ihl + 6
        else:
            return
        if len(data) < offset + 2:
            return  # checksum not captured: nothing to fix
        old = int.from_bytes(data[offset:offset + 2], "big")
        if protocol == IPPROTO_UDP and old == 0:
            return  # UDP "no checksum"
        # Incremental update over the four changed pseudo-header words.
        total = (~old) & 0xFFFF
        for before, after in ((src, new_src), (dst, new_dst)):
            for half in range(2):
                old_word = (before.value >> (16 * (1 - half))) & 0xFFFF
                new_word = (after.value >> (16 * (1 - half))) & 0xFFFF
                total += ((~old_word) & 0xFFFF) + new_word
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        updated = (~total) & 0xFFFF
        if protocol == IPPROTO_UDP and updated == 0:
            updated = 0xFFFF
        data[offset:offset + 2] = updated.to_bytes(2, "big")

    def anonymize_trace(self, trace: Trace) -> Trace:
        """A new trace with every record's addresses rewritten."""
        output = Trace(link_name=trace.link_name, snaplen=trace.snaplen)
        for record in trace:
            output.append(self.anonymize_record(record))
        return output
