"""libpcap file format reader/writer.

Traces round-trip through the classic pcap format (magic ``0xa1b2c3d4``,
microsecond timestamps, ``LINKTYPE_RAW`` so each record body is a bare IPv4
packet).  This makes the detector usable on real captures converted with
``tcpdump -w``/``tshark`` as well as on simulator output.

Two reading modes:

* :func:`read_pcap` materializes the whole file as a :class:`Trace`;
* :func:`iter_pcap` / :func:`iter_pcap_chunks` stream records with bounded
  memory, which is what the sharded parallel engine feeds on for traces
  too large to hold at once.

A capture cut off mid-record (``tcpdump -c``, disk-full, a crashed
collector) is common in practice; the partial tail record is dropped with
a :class:`PcapWarning` instead of failing the whole trace.
"""

from __future__ import annotations

import struct
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterator

from repro.net.trace import SNAPLEN_40, Trace, TraceRecord
from repro.obs.log import get_logger
from repro.obs.metrics import get_registry

_logger = get_logger("pcap")

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
PCAP_MAGIC_NS = 0xA1B23C4D
LINKTYPE_RAW = 101

#: Default record count per chunk for :func:`iter_pcap_chunks` — with a
#: 40-byte snaplen this is a few MiB of buffered data, far below trace size.
DEFAULT_CHUNK_RECORDS = 65_536

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_GLOBAL_HEADER_BE = struct.Struct(">IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_RECORD_HEADER_BE = struct.Struct(">IIII")


class PcapError(ValueError):
    """Raised for malformed pcap files."""


class PcapWarning(UserWarning):
    """Issued for recoverable defects (a truncated final record)."""


def write_pcap(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` in classic little-endian pcap format."""
    with open(path, "wb") as stream:
        _write_stream(trace, stream)


def _write_stream(trace: Trace, stream: BinaryIO) -> None:
    stream.write(
        _GLOBAL_HEADER.pack(
            PCAP_MAGIC, 2, 4, 0, 0, max(trace.snaplen, SNAPLEN_40), LINKTYPE_RAW
        )
    )
    for record in trace.records:
        seconds = int(record.timestamp)
        micros = int(round((record.timestamp - seconds) * 1_000_000))
        if micros >= 1_000_000:
            seconds += 1
            micros -= 1_000_000
        stream.write(
            _RECORD_HEADER.pack(seconds, micros, len(record.data),
                                record.wire_length)
        )
        stream.write(record.data)


@dataclass(slots=True, frozen=True)
class _PcapHeader:
    """Parsed global header: everything the record loop needs."""

    record_struct: struct.Struct
    divisor: int
    mac_header: int
    snaplen: int


def _read_global_header(stream: BinaryIO) -> _PcapHeader:
    raw_header = stream.read(_GLOBAL_HEADER.size)
    if len(raw_header) < _GLOBAL_HEADER.size:
        raise PcapError("truncated pcap global header")
    magic_le = struct.unpack("<I", raw_header[:4])[0]
    if magic_le in (PCAP_MAGIC, PCAP_MAGIC_NS):
        header_struct, record_struct = _GLOBAL_HEADER, _RECORD_HEADER
        nanos = magic_le == PCAP_MAGIC_NS
    else:
        magic_be = struct.unpack(">I", raw_header[:4])[0]
        if magic_be not in (PCAP_MAGIC, PCAP_MAGIC_NS):
            raise PcapError(f"bad pcap magic: {raw_header[:4].hex()}")
        header_struct, record_struct = _GLOBAL_HEADER_BE, _RECORD_HEADER_BE
        nanos = magic_be == PCAP_MAGIC_NS
    (_, major, minor, _, _, snaplen, linktype) = header_struct.unpack(raw_header)
    if (major, minor) != (2, 4):
        raise PcapError(f"unsupported pcap version {major}.{minor}")
    if linktype not in (LINKTYPE_RAW, 1):
        raise PcapError(f"unsupported linktype {linktype}")
    return _PcapHeader(
        record_struct=record_struct,
        divisor=1_000_000_000 if nanos else 1_000_000,
        mac_header=14 if linktype == 1 else 0,
        snaplen=snaplen or SNAPLEN_40,
    )


def _truncated(detail: str, source: str) -> None:
    """A capture ended mid-record: warn (for callers that filter on
    :class:`PcapWarning`), log with the *filename* (so batch runs over
    many pcaps record which file was damaged), and count it."""
    message = (f"pcap capture ends mid-record ({detail}); "
               "dropping the partial final record")
    warnings.warn(message, PcapWarning, stacklevel=4)
    _logger.warning("%s: %s", source or "<stream>", message)
    get_registry().counter(
        "pcap_truncated_records_total",
        "Partial final records dropped from damaged captures",
    ).inc()


def _iter_records(stream: BinaryIO, header: _PcapHeader,
                  source: str = "") -> Iterator[TraceRecord]:
    record_struct = header.record_struct
    mac_header = header.mac_header
    divisor = header.divisor
    while True:
        raw_record = stream.read(record_struct.size)
        if not raw_record:
            break
        if len(raw_record) < record_struct.size:
            _truncated("truncated record header", source)
            break
        seconds, fraction, captured_len, wire_len = record_struct.unpack(raw_record)
        data = stream.read(captured_len)
        if len(data) < captured_len:
            _truncated(f"{len(data)}/{captured_len} body bytes", source)
            break
        timestamp = seconds + fraction / divisor
        yield TraceRecord(
            timestamp=timestamp,
            data=data[mac_header:],
            wire_length=max(wire_len - mac_header, len(data) - mac_header),
        )


def read_pcap(path: str | Path, link_name: str = "",
              progress=None) -> Trace:
    """Read a pcap file into a :class:`Trace`.

    Handles both byte orders and nanosecond-magic files.  Records are
    assumed to be raw IPv4 (``LINKTYPE_RAW``); Ethernet (``LINKTYPE 1``)
    frames have their 14-byte MAC header stripped.

    ``progress`` is called as ``progress(1)`` per record loaded — pass a
    rate-limited :class:`~repro.obs.progress.Heartbeat` for large files.
    """
    with open(path, "rb") as stream:
        return _read_stream(stream, link_name, source=str(path),
                            progress=progress)


def _read_stream(stream: BinaryIO, link_name: str, source: str = "",
                 progress=None) -> Trace:
    header = _read_global_header(stream)
    trace = Trace(link_name=link_name, snaplen=header.snaplen)
    if progress is None:
        for record in _iter_records(stream, header, source):
            trace.append(record)
    else:
        for record in _iter_records(stream, header, source):
            trace.append(record)
            progress(1)
    return trace


def iter_pcap(path: str | Path) -> Iterator[TraceRecord]:
    """Stream a pcap file record by record with bounded memory.

    Yields exactly the records :func:`read_pcap` would load, in order,
    without ever holding more than one record at a time.
    """
    with open(path, "rb") as stream:
        header = _read_global_header(stream)
        yield from _iter_records(stream, header, str(path))


def iter_pcap_chunks(
    path: str | Path,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    link_name: str = "",
) -> Iterator[Trace]:
    """Stream a pcap file as :class:`Trace` chunks of ``chunk_records``.

    Each chunk carries the file's snaplen and ``link_name``, so chunk
    consumers (the sharded engine, incremental indexers) see the same
    metadata :func:`read_pcap` would attach, while peak memory stays
    bounded by the chunk size rather than the trace length.
    """
    if chunk_records < 1:
        raise PcapError(f"chunk_records must be >= 1: {chunk_records}")
    with open(path, "rb") as stream:
        header = _read_global_header(stream)
        chunk = Trace(link_name=link_name, snaplen=header.snaplen)
        for record in _iter_records(stream, header, str(path)):
            chunk.append(record)
            if len(chunk.records) >= chunk_records:
                yield chunk
                chunk = Trace(link_name=link_name, snaplen=header.snaplen)
        if chunk.records:
            yield chunk
