"""libpcap file format reader/writer.

Traces round-trip through the classic pcap format (magic ``0xa1b2c3d4``,
microsecond timestamps, ``LINKTYPE_RAW`` so each record body is a bare IPv4
packet).  This makes the detector usable on real captures converted with
``tcpdump -w``/``tshark`` as well as on simulator output.

Three reading modes:

* :func:`read_pcap` materializes the whole file as a :class:`Trace`;
* :func:`iter_pcap` / :func:`iter_pcap_chunks` stream records with bounded
  memory, which is what the sharded parallel engine feeds on for traces
  too large to hold at once;
* :func:`read_pcap_columnar` / :func:`iter_pcap_columnar` map the file
  with ``mmap`` and decode record headers in place with
  ``struct.unpack_from`` over a ``memoryview`` — no ``read()`` call, no
  heap ``bytes`` copy, and no per-record Python object; record bodies
  stay in the page cache and are referenced by offset from
  :class:`~repro.net.columnar.ColumnarChunk` columns.  This is the
  detector's ingest fast path (see ``docs/PERFORMANCE.md``).

A capture cut off mid-record (``tcpdump -c``, disk-full, a crashed
collector) is common in practice; the partial tail record is dropped with
a :class:`PcapWarning` instead of failing the whole trace.
"""

from __future__ import annotations

import mmap
import struct
import warnings
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterator

from repro.net.columnar import ColumnarChunk, ColumnarTrace
from repro.net.trace import SNAPLEN_40, Trace, TraceRecord
from repro.obs.log import get_logger
from repro.obs.metrics import get_registry

_logger = get_logger("pcap")

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
PCAP_MAGIC_NS = 0xA1B23C4D
LINKTYPE_RAW = 101

#: Default record count per chunk for :func:`iter_pcap_chunks` — with a
#: 40-byte snaplen this is a few MiB of buffered data, far below trace size.
DEFAULT_CHUNK_RECORDS = 65_536

#: A record below this many captured bytes cannot hold an IPv4 header and
#: can never participate in detection.
_MIN_IP_HEADER = 20

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_GLOBAL_HEADER_BE = struct.Struct(">IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_RECORD_HEADER_BE = struct.Struct(">IIII")


class PcapError(ValueError):
    """Raised for malformed pcap files."""


class PcapWarning(UserWarning):
    """Issued for recoverable defects (a truncated final record)."""


def write_pcap(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` in classic little-endian pcap format."""
    with open(path, "wb") as stream:
        _write_stream(trace, stream)


def _write_stream(trace: Trace, stream: BinaryIO) -> None:
    stream.write(
        _GLOBAL_HEADER.pack(
            PCAP_MAGIC, 2, 4, 0, 0, max(trace.snaplen, SNAPLEN_40), LINKTYPE_RAW
        )
    )
    for record in trace.records:
        seconds = int(record.timestamp)
        micros = int(round((record.timestamp - seconds) * 1_000_000))
        if micros >= 1_000_000:
            seconds += 1
            micros -= 1_000_000
        stream.write(
            _RECORD_HEADER.pack(seconds, micros, len(record.data),
                                record.wire_length)
        )
        stream.write(record.data)


@dataclass(slots=True, frozen=True)
class _PcapHeader:
    """Parsed global header: everything the record loop needs."""

    record_struct: struct.Struct
    divisor: int
    mac_header: int
    snaplen: int


def _read_global_header(stream: BinaryIO) -> _PcapHeader:
    raw_header = stream.read(_GLOBAL_HEADER.size)
    return _parse_global_header(raw_header)


def _parse_global_header(raw_header: bytes) -> _PcapHeader:
    if len(raw_header) < _GLOBAL_HEADER.size:
        raise PcapError("truncated pcap global header")
    magic_le = struct.unpack("<I", raw_header[:4])[0]
    if magic_le in (PCAP_MAGIC, PCAP_MAGIC_NS):
        header_struct, record_struct = _GLOBAL_HEADER, _RECORD_HEADER
        nanos = magic_le == PCAP_MAGIC_NS
    else:
        magic_be = struct.unpack(">I", raw_header[:4])[0]
        if magic_be not in (PCAP_MAGIC, PCAP_MAGIC_NS):
            raise PcapError(f"bad pcap magic: {raw_header[:4].hex()}")
        header_struct, record_struct = _GLOBAL_HEADER_BE, _RECORD_HEADER_BE
        nanos = magic_be == PCAP_MAGIC_NS
    (_, major, minor, _, _, snaplen, linktype) = header_struct.unpack(raw_header)
    if (major, minor) != (2, 4):
        raise PcapError(f"unsupported pcap version {major}.{minor}")
    if linktype not in (LINKTYPE_RAW, 1):
        raise PcapError(f"unsupported linktype {linktype}")
    return _PcapHeader(
        record_struct=record_struct,
        divisor=1_000_000_000 if nanos else 1_000_000,
        mac_header=14 if linktype == 1 else 0,
        snaplen=snaplen or SNAPLEN_40,
    )


def _truncated(detail: str, source: str) -> None:
    """A capture ended mid-record: warn (for callers that filter on
    :class:`PcapWarning`), log with the *filename* (so batch runs over
    many pcaps record which file was damaged), and count it."""
    message = (f"pcap capture ends mid-record ({detail}); "
               "dropping the partial final record")
    warnings.warn(message, PcapWarning, stacklevel=4)
    _logger.warning("%s: %s", source or "<stream>", message)
    get_registry().counter(
        "pcap_truncated_records_total",
        "Partial final records dropped from damaged captures",
    ).inc()


def _iter_records(stream: BinaryIO, header: _PcapHeader,
                  source: str = "") -> Iterator[TraceRecord]:
    record_struct = header.record_struct
    mac_header = header.mac_header
    divisor = header.divisor
    while True:
        raw_record = stream.read(record_struct.size)
        if not raw_record:
            break
        if len(raw_record) < record_struct.size:
            _truncated("truncated record header", source)
            break
        seconds, fraction, captured_len, wire_len = record_struct.unpack(raw_record)
        data = stream.read(captured_len)
        if len(data) < captured_len:
            _truncated(f"{len(data)}/{captured_len} body bytes", source)
            break
        timestamp = seconds + fraction / divisor
        yield TraceRecord(
            timestamp=timestamp,
            data=data[mac_header:],
            wire_length=max(wire_len - mac_header, len(data) - mac_header),
        )


def read_pcap(path: str | Path, link_name: str = "",
              progress=None) -> Trace:
    """Read a pcap file into a :class:`Trace`.

    Handles both byte orders and nanosecond-magic files.  Records are
    assumed to be raw IPv4 (``LINKTYPE_RAW``); Ethernet (``LINKTYPE 1``)
    frames have their 14-byte MAC header stripped.

    ``progress`` is called as ``progress(1)`` per record loaded — pass a
    rate-limited :class:`~repro.obs.progress.Heartbeat` for large files.
    """
    with open(path, "rb") as stream:
        return _read_stream(stream, link_name, source=str(path),
                            progress=progress)


def _read_stream(stream: BinaryIO, link_name: str, source: str = "",
                 progress=None) -> Trace:
    header = _read_global_header(stream)
    trace = Trace(link_name=link_name, snaplen=header.snaplen)
    if progress is None:
        for record in _iter_records(stream, header, source):
            trace.append(record)
    else:
        for record in _iter_records(stream, header, source):
            trace.append(record)
            progress(1)
    return trace


def iter_pcap(path: str | Path) -> Iterator[TraceRecord]:
    """Stream a pcap file record by record with bounded memory.

    Yields the records :func:`read_pcap` would load, in order, without
    ever holding more than one record at a time — except records shorter
    than a full IP header, which are skipped here (and counted in the
    ``pcap_short_records_skipped_total`` metric) instead of being
    materialized as :class:`TraceRecord` objects only for the detector to
    discard them later.
    """
    short_counter = get_registry().counter(
        "pcap_short_records_skipped_total",
        "Records below a full IP header skipped at the reader",
    )
    with open(path, "rb") as stream:
        header = _read_global_header(stream)
        for record in _iter_records(stream, header, str(path)):
            if len(record.data) < _MIN_IP_HEADER:
                short_counter.inc()
                continue
            yield record


def iter_pcap_chunks(
    path: str | Path,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    link_name: str = "",
) -> Iterator[Trace]:
    """Stream a pcap file as :class:`Trace` chunks of ``chunk_records``.

    Each chunk carries the file's snaplen and ``link_name``, so chunk
    consumers (the sharded engine, incremental indexers) see the same
    metadata :func:`read_pcap` would attach, while peak memory stays
    bounded by the chunk size rather than the trace length.
    """
    if chunk_records < 1:
        raise PcapError(f"chunk_records must be >= 1: {chunk_records}")
    with open(path, "rb") as stream:
        header = _read_global_header(stream)
        chunk = Trace(link_name=link_name, snaplen=header.snaplen)
        for record in _iter_records(stream, header, str(path)):
            chunk.append(record)
            if len(chunk.records) >= chunk_records:
                yield chunk
                chunk = Trace(link_name=link_name, snaplen=header.snaplen)
        if chunk.records:
            yield chunk


# -- zero-copy columnar reading ----------------------------------------------


def _mmap_pcap(path: str | Path) -> mmap.mmap:
    with open(path, "rb") as stream:
        stream.seek(0, 2)
        if stream.tell() < _GLOBAL_HEADER.size:
            raise PcapError("truncated pcap global header")
        # The mapping keeps the file open; the descriptor can close now.
        return mmap.mmap(stream.fileno(), 0, access=mmap.ACCESS_READ)


def iter_pcap_columnar(
    path: str | Path,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> Iterator[ColumnarChunk]:
    """Stream a pcap file as zero-copy :class:`ColumnarChunk` batches.

    The file is mapped with ``mmap`` and record headers are decoded in
    place with ``struct.unpack_from`` — record bodies are never copied;
    each chunk's ``data`` is a ``memoryview`` of the mapping and its
    ``offsets``/``lengths`` columns point into it.  Chunks stay valid for
    as long as any of their views is referenced (the mapping closes only
    once every view is garbage collected).

    Records are numbered exactly as :func:`read_pcap` loads them
    (``base_index`` anchors each chunk), including records too short to
    hold an IP header — the detection kernel skips those inline, so
    stream membership indices line up with the materializing reader.
    """
    if chunk_records < 1:
        raise PcapError(f"chunk_records must be >= 1: {chunk_records}")
    source = str(path)
    mapped = _mmap_pcap(path)
    buf = memoryview(mapped)
    header = _parse_global_header(bytes(buf[:_GLOBAL_HEADER.size]))
    record_struct = header.record_struct
    unpack_from = record_struct.unpack_from
    header_size = record_struct.size
    mac_header = header.mac_header
    divisor = header.divisor
    file_size = len(buf)

    position = _GLOBAL_HEADER.size
    base_index = 0
    count = 0
    timestamps = array("d")
    offsets = array("Q")
    lengths = array("I")
    wire_lengths = array("I")
    # Bound-method hoists: the loop below runs once per record on the
    # step-1 hot path, so every attribute lookup it sheds is measurable.
    ts_append = timestamps.append
    off_append = offsets.append
    len_append = lengths.append
    wire_append = wire_lengths.append

    def flush() -> ColumnarChunk:
        # A uniform positive captured length means uniformly strided
        # offsets (each record advances the cursor by header + captured
        # bytes), so the chunk can declare its stride and the detection
        # kernel can bulk-mask it.  min/max over the array run at C
        # speed; nothing is paid per record.
        stride = None
        if lengths and lengths[0] and min(lengths) == max(lengths):
            stride = header_size + mac_header + lengths[0]
        return ColumnarChunk(
            data=buf,
            timestamps=timestamps,
            offsets=offsets,
            lengths=lengths,
            wire_lengths=wire_lengths,
            base_index=base_index,
            stride=stride,
        )

    while position < file_size:
        if position + header_size > file_size:
            _truncated("truncated record header", source)
            break
        seconds, fraction, captured_len, wire_len = unpack_from(
            buf, position
        )
        position += header_size
        end = position + captured_len
        if end > file_size:
            available = file_size - position
            _truncated(f"{available}/{captured_len} body bytes", source)
            break
        if mac_header:
            length = (captured_len - mac_header
                      if captured_len > mac_header else 0)
            off_append(position + mac_header if length else position)
            len_append(length)
            wire_append(max(wire_len - mac_header,
                            captured_len - mac_header, 0))
        else:
            off_append(position)
            len_append(captured_len)
            wire_append(wire_len if wire_len >= captured_len
                        else captured_len)
        ts_append(seconds + fraction / divisor)
        position = end
        count += 1
        if count >= chunk_records:
            yield flush()
            base_index += count
            count = 0
            timestamps = array("d")
            offsets = array("Q")
            lengths = array("I")
            wire_lengths = array("I")
            ts_append = timestamps.append
            off_append = offsets.append
            len_append = lengths.append
            wire_append = wire_lengths.append
    if count:
        yield flush()


def read_pcap_columnar(
    path: str | Path,
    link_name: str = "",
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    progress=None,
) -> ColumnarTrace:
    """Map a pcap file as a zero-copy :class:`ColumnarTrace`.

    Loads the same records as :func:`read_pcap` — same timestamps, bytes,
    and wire lengths, proven record-for-record in the test suite — while
    allocating a handful of columns per 65k records instead of one
    :class:`TraceRecord` per packet.

    ``progress`` is called as ``progress(n)`` once per chunk with the
    chunk's record count — pass a rate-limited
    :class:`~repro.obs.progress.Heartbeat` for large files.
    """
    if progress is None:
        chunks = list(iter_pcap_columnar(path, chunk_records=chunk_records))
    else:
        chunks = []
        for chunk in iter_pcap_columnar(path, chunk_records=chunk_records):
            chunks.append(chunk)
            progress(len(chunk))
    # Re-parse the global header for the snaplen (the chunks only carry
    # record columns) and pin the mapping via the trace.
    with open(path, "rb") as stream:
        snaplen = _read_global_header(stream).snaplen
    buffers = [chunks[0].data] if chunks else []
    return ColumnarTrace(
        chunks=chunks,
        link_name=link_name,
        snaplen=snaplen,
        buffers=buffers,
    )
