"""RFC 1071 Internet checksum.

Both the IPv4 header checksum and the TCP/UDP/ICMP checksums use the same
ones-complement sum.  The paper's replica definition hinges on checksums:
two replicas differ *only* in TTL and the IP header checksum, and equal
TCP/UDP checksums stand in for equal payloads (the traces kept just 40
bytes per packet).  Getting these right end-to-end is therefore load-bearing
for the whole reproduction: the simulator's forwarding engine patches the
IP checksum at every hop with the RFC 1624 incremental form exactly as a
router would, and the detector verifies the relationship between the
replicas' checksums.
"""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """Compute the RFC 1071 checksum of ``data``.

    Returns the 16-bit ones-complement of the ones-complement sum, as an
    integer in ``[0, 0xFFFF]``.  Odd-length input is zero-padded.

    The ones-complement sum of 16-bit words is the big-endian value of
    the whole buffer reduced mod 0xFFFF (RFC 1071 §2: the sum is
    arithmetic mod 2^16 - 1), so one C-speed ``int.from_bytes`` replaces
    the per-word Python loop.  End-around-carry folding yields 0xFFFF,
    never 0x0000, for a nonzero buffer whose sum is a multiple of
    0xFFFF; the explicit fix-up preserves that bit pattern.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = int.from_bytes(data, "big")
    folded = total % 0xFFFF
    if folded == 0 and total != 0:
        folded = 0xFFFF
    return ~folded & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True if ``data`` (including its embedded checksum) sums to zero."""
    return internet_checksum(data) == 0


def incremental_update(old_checksum: int, old_word: int, new_word: int) -> int:
    """RFC 1624 incremental checksum update for one 16-bit word.

    Routers use this to fix the IP header checksum after decrementing the
    TTL without touching the rest of the header.  The forwarding engine's
    hot path (:meth:`repro.net.packet.Packet.forwarded`) uses exactly this
    form instead of a full recompute, mirroring real router behaviour and
    exercising the equivalence the detector relies on.
    """
    if not 0 <= old_checksum <= 0xFFFF:
        raise ValueError(f"checksum out of range: {old_checksum:#x}")
    if not 0 <= old_word <= 0xFFFF or not 0 <= new_word <= 0xFFFF:
        raise ValueError("words must be 16-bit")
    # RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
    total = (~old_checksum & 0xFFFF) + (~old_word & 0xFFFF) + new_word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    # No negative-zero fix-up: end-around-carry folding of a nonzero sum
    # yields 0xFFFF (never 0x0000) for the zero congruence class, so the
    # result here equals :func:`internet_checksum` over the updated data
    # bit-for-bit — including the corner where the correct checksum is
    # 0x0000.  That exact equality is what lets the forwarding engine
    # patch checksums incrementally yet emit byte-identical traces.
    return ~total & 0xFFFF


def pseudo_header(src: bytes, dst: bytes, protocol: int, length: int) -> bytes:
    """The IPv4 pseudo-header used by TCP/UDP checksums."""
    if len(src) != 4 or len(dst) != 4:
        raise ValueError("src and dst must be 4 bytes each")
    if not 0 <= protocol <= 0xFF:
        raise ValueError(f"protocol out of range: {protocol}")
    if not 0 <= length <= 0xFFFF:
        raise ValueError(f"length out of range: {length}")
    return src + dst + bytes((0, protocol)) + length.to_bytes(2, "big")
