"""RFC 1071 Internet checksum.

Both the IPv4 header checksum and the TCP/UDP/ICMP checksums use the same
ones-complement sum.  The paper's replica definition hinges on checksums:
two replicas differ *only* in TTL and the IP header checksum, and equal
TCP/UDP checksums stand in for equal payloads (the traces kept just 40
bytes per packet).  Getting these right end-to-end is therefore load-bearing
for the whole reproduction: the simulator recomputes the IP checksum at
every hop exactly as a router would, and the detector verifies the
relationship between the replicas' checksums.
"""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """Compute the RFC 1071 checksum of ``data``.

    Returns the 16-bit ones-complement of the ones-complement sum, as an
    integer in ``[0, 0xFFFF]``.  Odd-length input is zero-padded.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    # Sum 16-bit big-endian words; defer carry folding to the end.
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True if ``data`` (including its embedded checksum) sums to zero."""
    return internet_checksum(data) == 0


def incremental_update(old_checksum: int, old_word: int, new_word: int) -> int:
    """RFC 1624 incremental checksum update for one 16-bit word.

    Routers use this to fix the IP header checksum after decrementing the
    TTL without touching the rest of the header.  Using the incremental
    form in the forwarding engine (instead of a full recompute) mirrors
    real router behaviour and exercises the equivalence the detector
    relies on.
    """
    if not 0 <= old_checksum <= 0xFFFF:
        raise ValueError(f"checksum out of range: {old_checksum:#x}")
    if not 0 <= old_word <= 0xFFFF or not 0 <= new_word <= 0xFFFF:
        raise ValueError("words must be 16-bit")
    # RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
    total = (~old_checksum & 0xFFFF) + (~old_word & 0xFFFF) + new_word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    result = ~total & 0xFFFF
    # Ones-complement negative zero: 0x0000 and 0xFFFF both represent 0,
    # but only 0xFFFF verifies against all-zero data; normalize like
    # deployed stacks do.
    return 0xFFFF if result == 0 else result


def pseudo_header(src: bytes, dst: bytes, protocol: int, length: int) -> bytes:
    """The IPv4 pseudo-header used by TCP/UDP checksums."""
    if len(src) != 4 or len(dst) != 4:
        raise ValueError("src and dst must be 4 bytes each")
    if not 0 <= protocol <= 0xFF:
        raise ValueError(f"protocol out of range: {protocol}")
    if not 0 <= length <= 0xFFFF:
        raise ValueError(f"length out of range: {length}")
    return src + dst + bytes((0, protocol)) + length.to_bytes(2, "big")
