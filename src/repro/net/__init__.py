"""Packet substrate: addresses, checksums, headers, traces, and pcap I/O.

This subpackage is a self-contained packet library built for this
reproduction.  It provides byte-exact IPv4/TCP/UDP/ICMP header handling so
that the loop detector can operate on captured bytes exactly the way the
paper's detector operated on 40-byte snaplen records from the Sprint
monitors.
"""

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.checksum import internet_checksum, verify_checksum
from repro.net.packet import (
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    ICMP_TIME_EXCEEDED,
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    IcmpHeader,
    IPv4Header,
    Packet,
    TcpHeader,
    UdpHeader,
    TcpFlags,
)
from repro.net.trace import SNAPLEN_40, Trace, TraceRecord
from repro.net.pcap import read_pcap, write_pcap

__all__ = [
    "IPv4Address",
    "IPv4Prefix",
    "internet_checksum",
    "verify_checksum",
    "IPv4Header",
    "TcpHeader",
    "UdpHeader",
    "IcmpHeader",
    "TcpFlags",
    "Packet",
    "IPPROTO_TCP",
    "IPPROTO_UDP",
    "IPPROTO_ICMP",
    "ICMP_ECHO_REQUEST",
    "ICMP_ECHO_REPLY",
    "ICMP_TIME_EXCEEDED",
    "Trace",
    "TraceRecord",
    "SNAPLEN_40",
    "read_pcap",
    "write_pcap",
]
