"""Zero-copy columnar trace representation.

A :class:`~repro.net.trace.Trace` holds one Python object per captured
packet — fine for a few hundred thousand records, ruinous for the
hundreds of millions of 40-byte records an OC-12 trace produces, where
allocator and attribute-access overhead dominate the single linear scan
the detector actually needs.

The columnar layout stores a chunk of records as *one contiguous data
slab* plus parallel ``array``-typed columns:

====================  ==========  =============================================
column                typecode    meaning
====================  ==========  =============================================
``timestamps``        ``d``       capture time (seconds, float64)
``offsets``           ``Q``       byte offset of each record body in ``data``
``lengths``           ``I``       captured bytes per record (<= snaplen)
``wire_lengths``      ``I``       on-wire IP length per record
====================  ==========  =============================================

``data`` is any buffer — for mmap-backed traces it is a ``memoryview``
over the mapped pcap file, so record bodies are never copied out of the
page cache until something actually materializes them (a replica-stream
``first_data``, a :meth:`ColumnarChunk.to_trace` call).  For shard slabs
shipped across process boundaries it is a compact ``bytes`` object that
pickles as one buffer instead of one object per record.

``base_index`` anchors the chunk's records in the *global* record
numbering of the trace (record ``i`` of the chunk is global record
``base_index + i``); a non-``None`` ``indices`` column overrides that
with explicit per-record global indices, which is what lets a sharded
slab carry records plucked from all over the trace while stream
membership still lines up with the full trace.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Iterator

from repro.net.trace import SNAPLEN_40, Trace, TraceRecord


class ColumnarError(ValueError):
    """Raised for malformed columnar chunks."""


@dataclass(slots=True)
class ColumnarChunk:
    """A batch of captured records in columnar form.

    All columns must have equal length; ``offsets[i] + lengths[i]`` must
    stay inside ``data``.  ``wire_lengths`` may be ``None`` for chunks
    that only feed the detection kernel (shard slabs), which never looks
    at on-wire lengths.
    """

    data: bytes | bytearray | memoryview
    timestamps: array
    offsets: array
    lengths: array
    wire_lengths: array | None = None
    base_index: int = 0
    indices: array | None = None
    #: Producer's guarantee of a regular layout: when not ``None``,
    #: ``offsets[i] == offsets[0] + i * stride`` for every record.  The
    #: batched kernel uses it to mask TTL/checksum bytes for a whole
    #: chunk with three C-speed strided slice assignments instead of a
    #: per-record Python loop.  Never set it on a chunk whose offsets
    #: you have not laid out yourself — ``None`` always stays correct.
    stride: int | None = None

    def __post_init__(self) -> None:
        n = len(self.timestamps)
        if len(self.offsets) != n or len(self.lengths) != n:
            raise ColumnarError(
                f"column lengths differ: {n} timestamps, "
                f"{len(self.offsets)} offsets, {len(self.lengths)} lengths"
            )
        if self.wire_lengths is not None and len(self.wire_lengths) != n:
            raise ColumnarError(
                f"column lengths differ: {n} timestamps, "
                f"{len(self.wire_lengths)} wire_lengths"
            )
        if self.indices is not None and len(self.indices) != n:
            raise ColumnarError(
                f"column lengths differ: {n} timestamps, "
                f"{len(self.indices)} indices"
            )

    def __len__(self) -> int:
        return len(self.timestamps)

    def global_index(self, i: int) -> int:
        """The trace-global record number of chunk record ``i``."""
        if self.indices is not None:
            return self.indices[i]
        return self.base_index + i

    def slice(self, start: int, stop: int) -> "ColumnarChunk":
        """A sub-chunk covering records ``start:stop``.

        Columns are sliced; the data slab is shared (no copy), so the
        slice stays zero-copy and keeps the parent's ``stride``
        guarantee — offsets are absolute into the shared slab, so
        ``offsets[i] == offsets[0] + i * stride`` still holds.  Used by
        window-boundary feeders that split a chunk at sampling points.
        """
        if start < 0 or stop > len(self) or start > stop:
            raise ColumnarError(
                f"slice [{start}:{stop}] outside chunk of {len(self)}"
            )
        return ColumnarChunk(
            data=self.data,
            timestamps=self.timestamps[start:stop],
            offsets=self.offsets[start:stop],
            lengths=self.lengths[start:stop],
            wire_lengths=(None if self.wire_lengths is None
                          else self.wire_lengths[start:stop]),
            base_index=self.base_index + start,
            indices=(None if self.indices is None
                     else self.indices[start:stop]),
            stride=self.stride,
        )

    def record_view(self, i: int) -> memoryview:
        """Zero-copy view of record ``i``'s captured bytes."""
        offset = self.offsets[i]
        return memoryview(self.data)[offset:offset + self.lengths[i]]

    def record_bytes(self, i: int) -> bytes:
        """Record ``i``'s captured bytes, materialized."""
        offset = self.offsets[i]
        return bytes(memoryview(self.data)[offset:offset + self.lengths[i]])

    def iter_views(self) -> Iterator[tuple[float, memoryview]]:
        """Yield ``(timestamp, view)`` pairs without materializing bytes."""
        view = memoryview(self.data)
        offsets = self.offsets
        timestamps = self.timestamps
        for i, length in enumerate(self.lengths):
            offset = offsets[i]
            yield timestamps[i], view[offset:offset + length]

    def iter_triples(self) -> Iterator[tuple[int, float, bytes]]:
        """Yield reference-detector ``(index, timestamp, data)`` triples.

        This is the bridge to :func:`~repro.core.replica.
        detect_replicas_indexed` — it materializes one ``bytes`` object
        per record, exactly what the columnar kernel avoids, and exists
        for equivalence tests and fallbacks.
        """
        view = memoryview(self.data)
        offsets = self.offsets
        timestamps = self.timestamps
        indices = self.indices
        base = self.base_index
        for i, length in enumerate(self.lengths):
            offset = offsets[i]
            index = indices[i] if indices is not None else base + i
            yield index, timestamps[i], bytes(view[offset:offset + length])

    def to_records(self) -> Iterator[TraceRecord]:
        """Materialize the chunk as :class:`TraceRecord` objects."""
        if self.wire_lengths is None:
            raise ColumnarError("chunk carries no wire lengths")
        view = memoryview(self.data)
        offsets = self.offsets
        wire_lengths = self.wire_lengths
        for i, length in enumerate(self.lengths):
            offset = offsets[i]
            yield TraceRecord(
                timestamp=self.timestamps[i],
                data=bytes(view[offset:offset + length]),
                wire_length=wire_lengths[i],
            )

    @classmethod
    def from_records(
        cls, records, base_index: int = 0
    ) -> "ColumnarChunk":
        """Build a compact chunk from an iterable of
        :class:`TraceRecord` (copies each body into a fresh slab)."""
        slab = bytearray()
        timestamps = array("d")
        offsets = array("Q")
        lengths = array("I")
        wire_lengths = array("I")
        for record in records:
            timestamps.append(record.timestamp)
            offsets.append(len(slab))
            lengths.append(len(record.data))
            wire_lengths.append(record.wire_length)
            slab.extend(record.data)
        # Bodies are packed back to back, so a uniform captured length
        # means a uniform offset stride — declare it for the kernel.
        stride = None
        if lengths and min(lengths) == max(lengths):
            stride = lengths[0]
        return cls(
            data=bytes(slab),
            timestamps=timestamps,
            offsets=offsets,
            lengths=lengths,
            wire_lengths=wire_lengths,
            base_index=base_index,
            stride=stride,
        )


@dataclass(slots=True)
class ColumnarTrace:
    """A whole trace as a sequence of :class:`ColumnarChunk`.

    Quacks like :class:`~repro.net.trace.Trace` for the summary surface
    the CLI and report renderers touch — ``link_name``, ``len()``,
    ``duration``, ``average_bandwidth_bps`` — without ever holding one
    object per record.  ``buffers`` keeps backing objects (the mmap of a
    mapped pcap file) alive for as long as the trace is referenced.
    """

    chunks: list[ColumnarChunk] = field(default_factory=list)
    link_name: str = ""
    snaplen: int = SNAPLEN_40
    buffers: list = field(default_factory=list, repr=False)

    def __len__(self) -> int:
        return sum(len(chunk) for chunk in self.chunks)

    @property
    def record_count(self) -> int:
        return len(self)

    @property
    def empty(self) -> bool:
        return all(len(chunk) == 0 for chunk in self.chunks)

    @property
    def start_time(self) -> float:
        for chunk in self.chunks:
            if len(chunk):
                return chunk.timestamps[0]
        raise ColumnarError("empty trace has no start time")

    @property
    def end_time(self) -> float:
        for chunk in reversed(self.chunks):
            if len(chunk):
                return chunk.timestamps[-1]
        raise ColumnarError("empty trace has no end time")

    @property
    def duration(self) -> float:
        if len(self) < 2:
            return 0.0
        return self.end_time - self.start_time

    @property
    def total_bytes(self) -> int:
        total = 0
        for chunk in self.chunks:
            if chunk.wire_lengths is None:
                raise ColumnarError("chunk carries no wire lengths")
            total += sum(chunk.wire_lengths)
        return total

    def average_bandwidth_bps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.total_bytes * 8 / self.duration

    def iter_views(self) -> Iterator[tuple[float, memoryview]]:
        """Yield ``(timestamp, view)`` pairs across all chunks."""
        for chunk in self.chunks:
            yield from chunk.iter_views()

    def iter_timestamps(self) -> Iterator[float]:
        for chunk in self.chunks:
            yield from chunk.timestamps

    def iter_triples(self) -> Iterator[tuple[int, float, bytes]]:
        """Reference-detector triples across all chunks (materializing)."""
        for chunk in self.chunks:
            yield from chunk.iter_triples()

    def to_trace(self) -> Trace:
        """Materialize a full :class:`Trace` (one object per record)."""
        trace = Trace(link_name=self.link_name, snaplen=self.snaplen)
        for chunk in self.chunks:
            for record in chunk.to_records():
                trace.records.append(record)
        return trace

    @classmethod
    def from_trace(cls, trace: Trace,
                   chunk_records: int = 65_536) -> "ColumnarTrace":
        """Convert a materialized trace to columnar chunks."""
        if chunk_records < 1:
            raise ColumnarError(
                f"chunk_records must be >= 1: {chunk_records}"
            )
        chunks = []
        records = trace.records
        for start in range(0, len(records), chunk_records):
            chunks.append(ColumnarChunk.from_records(
                records[start:start + chunk_records], base_index=start
            ))
        return cls(chunks=chunks, link_name=trace.link_name,
                   snaplen=trace.snaplen)
