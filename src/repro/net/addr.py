"""IPv4 addresses and prefixes.

Small, dependency-free address types.  The detector groups replica streams
by the 24-bit destination prefix (the longest prefix honored by tier-1 ISPs
at the time of the paper), so prefix extraction has to be cheap: both types
wrap a plain ``int`` and support hashing and ordering.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import total_ordering
from typing import Iterator

_MAX_U32 = 0xFFFFFFFF


class AddressError(ValueError):
    """Raised for malformed addresses or prefixes."""


@total_ordering
@dataclass(frozen=True, slots=True)
class IPv4Address:
    """A single IPv4 address backed by an unsigned 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MAX_U32:
            raise AddressError(f"address out of range: {self.value!r}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad notation, e.g. ``"192.0.2.1"``."""
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise AddressError(f"not a dotted quad: {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise AddressError(f"non-numeric octet in {text!r}")
            octet = int(part)
            if octet > 255:
                raise AddressError(f"octet out of range in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    @classmethod
    def from_octets(cls, a: int, b: int, c: int, d: int) -> "IPv4Address":
        """Build an address from four octets."""
        for octet in (a, b, c, d):
            if not 0 <= octet <= 255:
                raise AddressError(f"octet out of range: {octet}")
        return cls((a << 24) | (b << 16) | (c << 8) | d)

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Address":
        """Build an address from 4 network-order bytes."""
        if len(data) != 4:
            raise AddressError(f"need 4 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    @property
    def octets(self) -> tuple[int, int, int, int]:
        v = self.value
        return ((v >> 24) & 0xFF, (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF)

    @property
    def packed(self) -> bytes:
        """The 4 network-order bytes of the address."""
        return self.value.to_bytes(4, "big")

    def prefix(self, length: int) -> "IPv4Prefix":
        """The enclosing prefix of the given length."""
        return IPv4Prefix.containing(self, length)

    def slash24(self) -> "IPv4Prefix":
        """The enclosing /24 — the granularity used for stream validation."""
        return IPv4Prefix.containing(self, 24)

    def is_class_c(self) -> bool:
        """True for classful class-C space (192.0.0.0 – 223.255.255.255).

        Figure 7 of the paper observes that looped destinations concentrate
        in class-C space; the analysis module uses this predicate.
        """
        top = (self.value >> 29) & 0x7
        return top == 0b110

    def is_class_a(self) -> bool:
        """True for classful class-A space (0.0.0.0 – 127.255.255.255)."""
        return (self.value >> 31) == 0

    def is_class_b(self) -> bool:
        """True for classful class-B space (128.0.0.0 – 191.255.255.255)."""
        return (self.value >> 30) == 0b10

    def is_multicast(self) -> bool:
        """True for class-D multicast space (224.0.0.0 – 239.255.255.255)."""
        return (self.value >> 28) == 0b1110

    def __str__(self) -> str:
        return ".".join(str(octet) for octet in self.octets)

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, IPv4Address):
            return NotImplemented
        return self.value < other.value

    def __int__(self) -> int:
        return self.value


@total_ordering
@dataclass(frozen=True, slots=True)
class IPv4Prefix:
    """An IPv4 prefix (``network/length``) with a canonical network address."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length out of range: {self.length}")
        if not 0 <= self.network <= _MAX_U32:
            raise AddressError(f"network out of range: {self.network!r}")
        if self.network & ~self.mask:
            raise AddressError(
                f"host bits set in {IPv4Address(self.network)}/{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "IPv4Prefix":
        """Parse CIDR notation, e.g. ``"10.1.0.0/16"``."""
        if "/" not in text:
            raise AddressError(f"missing '/': {text!r}")
        addr_text, _, len_text = text.partition("/")
        if not len_text.isdigit():
            raise AddressError(f"bad prefix length in {text!r}")
        address = IPv4Address.parse(addr_text)
        return cls.containing(address, int(len_text), strict=True)

    @classmethod
    def containing(
        cls, address: IPv4Address, length: int, strict: bool = False
    ) -> "IPv4Prefix":
        """The prefix of the given length containing ``address``.

        With ``strict=True`` the address must already be the canonical
        network address (host bits clear).
        """
        if not 0 <= length <= 32:
            raise AddressError(f"prefix length out of range: {length}")
        mask = (_MAX_U32 << (32 - length)) & _MAX_U32 if length else 0
        network = address.value & mask
        if strict and network != address.value:
            raise AddressError(f"host bits set in {address}/{length}")
        return cls(network, length)

    @property
    def mask(self) -> int:
        """The integer netmask."""
        if self.length == 0:
            return 0
        return (_MAX_U32 << (32 - self.length)) & _MAX_U32

    @property
    def network_address(self) -> IPv4Address:
        return IPv4Address(self.network)

    @property
    def broadcast_address(self) -> IPv4Address:
        return IPv4Address(self.network | (~self.mask & _MAX_U32))

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.length)

    def contains(self, address: IPv4Address) -> bool:
        """True if ``address`` lies inside this prefix."""
        return (address.value & self.mask) == self.network

    def overlaps(self, other: "IPv4Prefix") -> bool:
        """True if the two prefixes share any address."""
        shorter, longer = sorted((self, other), key=lambda p: p.length)
        return (longer.network & shorter.mask) == shorter.network

    def subnets(self, new_length: int) -> Iterator["IPv4Prefix"]:
        """Iterate the sub-prefixes of ``new_length`` inside this prefix."""
        if new_length < self.length:
            raise AddressError(
                f"cannot subnet /{self.length} into shorter /{new_length}"
            )
        step = 1 << (32 - new_length)
        for network in range(self.network, self.network + self.num_addresses, step):
            yield IPv4Prefix(network, new_length)

    def random_address(self, rng: random.Random) -> IPv4Address:
        """A uniformly random address inside the prefix."""
        offset = rng.randrange(self.num_addresses)
        return IPv4Address(self.network + offset)

    def __str__(self) -> str:
        return f"{self.network_address}/{self.length}"

    def __repr__(self) -> str:
        return f"IPv4Prefix({str(self)!r})"

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, IPv4Prefix):
            return NotImplemented
        return (self.network, self.length) < (other.network, other.length)
