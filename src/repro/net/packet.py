"""IPv4, TCP, UDP and ICMP packet model with byte-exact serialization.

The model is deliberately faithful at the byte level: the loop detector
works on captured bytes (40-byte snaplen, as in the paper), so packets
must round-trip through ``pack``/``unpack`` without loss, and the fields
the detector masks out (TTL, IP header checksum) must sit at their real
wire offsets.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from enum import IntFlag

from repro.net.addr import IPv4Address
from repro.net.checksum import incremental_update, internet_checksum, pseudo_header

IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17

ICMP_ECHO_REPLY = 0
ICMP_DEST_UNREACHABLE = 3
ICMP_ECHO_REQUEST = 8
ICMP_TIME_EXCEEDED = 11

IPV4_HEADER_LEN = 20
TCP_HEADER_LEN = 20
UDP_HEADER_LEN = 8
ICMP_HEADER_LEN = 8

_IPV4_STRUCT = struct.Struct("!BBHHHBBH4s4s")
_TCP_STRUCT = struct.Struct("!HHIIBBHHH")
_UDP_STRUCT = struct.Struct("!HHHH")
_ICMP_STRUCT = struct.Struct("!BBHHH")


class PacketError(ValueError):
    """Raised for malformed packets during pack/unpack."""


class TcpFlags(IntFlag):
    """TCP flag bits at their wire positions."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20
    ECE = 0x40
    CWR = 0x80


@dataclass(slots=True)
class IPv4Header:
    """A (option-free) IPv4 header.

    ``checksum=None`` means "compute on pack"; an explicit integer is
    emitted verbatim, which lets tests craft packets with bad checksums.
    """

    src: IPv4Address
    dst: IPv4Address
    ttl: int = 64
    protocol: int = IPPROTO_TCP
    identification: int = 0
    tos: int = 0
    total_length: int = IPV4_HEADER_LEN
    flags: int = 0
    fragment_offset: int = 0
    checksum: int | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.ttl <= 255:
            raise PacketError(f"TTL out of range: {self.ttl}")
        if not 0 <= self.identification <= 0xFFFF:
            raise PacketError(f"identification out of range: {self.identification}")
        if not 0 <= self.protocol <= 0xFF:
            raise PacketError(f"protocol out of range: {self.protocol}")
        if not IPV4_HEADER_LEN <= self.total_length <= 0xFFFF:
            raise PacketError(f"total length out of range: {self.total_length}")
        if not 0 <= self.flags <= 0x7:
            raise PacketError(f"flags out of range: {self.flags}")
        if not 0 <= self.fragment_offset <= 0x1FFF:
            raise PacketError(f"fragment offset out of range: {self.fragment_offset}")

    def pack(self) -> bytes:
        """Serialize to 20 wire bytes, computing the checksum if unset."""
        version_ihl = (4 << 4) | 5
        flags_frag = (self.flags << 13) | self.fragment_offset
        checksum = self.checksum
        if checksum is None:
            header = _IPV4_STRUCT.pack(
                version_ihl,
                self.tos,
                self.total_length,
                self.identification,
                flags_frag,
                self.ttl,
                self.protocol,
                0,
                self.src.packed,
                self.dst.packed,
            )
            checksum = internet_checksum(header)
        return _IPV4_STRUCT.pack(
            version_ihl,
            self.tos,
            self.total_length,
            self.identification,
            flags_frag,
            self.ttl,
            self.protocol,
            checksum,
            self.src.packed,
            self.dst.packed,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "IPv4Header":
        """Parse 20 wire bytes; the stored checksum is kept verbatim."""
        if len(data) < IPV4_HEADER_LEN:
            raise PacketError(f"short IPv4 header: {len(data)} bytes")
        (
            version_ihl,
            tos,
            total_length,
            identification,
            flags_frag,
            ttl,
            protocol,
            checksum,
            src,
            dst,
        ) = _IPV4_STRUCT.unpack(data[:IPV4_HEADER_LEN])
        version = version_ihl >> 4
        ihl = version_ihl & 0xF
        if version != 4:
            raise PacketError(f"not IPv4: version={version}")
        if ihl != 5:
            raise PacketError(f"IP options unsupported: ihl={ihl}")
        return cls(
            src=IPv4Address.from_bytes(src),
            dst=IPv4Address.from_bytes(dst),
            ttl=ttl,
            protocol=protocol,
            identification=identification,
            tos=tos,
            total_length=total_length,
            flags=flags_frag >> 13,
            fragment_offset=flags_frag & 0x1FFF,
            checksum=checksum,
        )

    def header_valid(self) -> bool:
        """True if the stored checksum matches the header contents."""
        if self.checksum is None:
            return True
        return internet_checksum(self.pack()) == 0


@dataclass(slots=True)
class TcpHeader:
    """A (option-free) TCP header."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: TcpFlags = TcpFlags(0)
    window: int = 65535
    checksum: int | None = None
    urgent: int = 0

    def __post_init__(self) -> None:
        for name, port in (("src", self.src_port), ("dst", self.dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise PacketError(f"{name} port out of range: {port}")
        if not 0 <= self.seq <= 0xFFFFFFFF or not 0 <= self.ack <= 0xFFFFFFFF:
            raise PacketError("seq/ack out of range")

    @property
    def protocol(self) -> int:
        return IPPROTO_TCP

    def pack(self, src: IPv4Address | None = None, dst: IPv4Address | None = None,
             payload: bytes = b"") -> bytes:
        """Serialize to 20 wire bytes.

        When the checksum is unset, ``src``/``dst`` are required so the
        pseudo-header checksum can be computed over ``payload``.
        """
        checksum = self.checksum
        if checksum is None:
            if src is None or dst is None:
                raise PacketError("src/dst needed to compute TCP checksum")
            header = self._pack_with_checksum(0)
            segment = header + payload
            pseudo = pseudo_header(src.packed, dst.packed, IPPROTO_TCP, len(segment))
            checksum = internet_checksum(pseudo + segment)
        return self._pack_with_checksum(checksum)

    def _pack_with_checksum(self, checksum: int) -> bytes:
        data_offset = (5 << 4)
        return _TCP_STRUCT.pack(
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            data_offset,
            int(self.flags),
            self.window,
            checksum,
            self.urgent,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "TcpHeader":
        if len(data) < TCP_HEADER_LEN:
            raise PacketError(f"short TCP header: {len(data)} bytes")
        (src_port, dst_port, seq, ack, data_offset, flags, window, checksum,
         urgent) = _TCP_STRUCT.unpack(data[:TCP_HEADER_LEN])
        if (data_offset >> 4) != 5:
            raise PacketError(f"TCP options unsupported: offset={data_offset >> 4}")
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=TcpFlags(flags),
            window=window,
            checksum=checksum,
            urgent=urgent,
        )


@dataclass(slots=True)
class UdpHeader:
    """A UDP header."""

    src_port: int
    dst_port: int
    length: int = UDP_HEADER_LEN
    checksum: int | None = None

    def __post_init__(self) -> None:
        for name, port in (("src", self.src_port), ("dst", self.dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise PacketError(f"{name} port out of range: {port}")
        if not UDP_HEADER_LEN <= self.length <= 0xFFFF:
            raise PacketError(f"UDP length out of range: {self.length}")

    @property
    def protocol(self) -> int:
        return IPPROTO_UDP

    def pack(self, src: IPv4Address | None = None, dst: IPv4Address | None = None,
             payload: bytes = b"") -> bytes:
        checksum = self.checksum
        if checksum is None:
            if src is None or dst is None:
                raise PacketError("src/dst needed to compute UDP checksum")
            header = _UDP_STRUCT.pack(self.src_port, self.dst_port, self.length, 0)
            datagram = header + payload
            pseudo = pseudo_header(src.packed, dst.packed, IPPROTO_UDP, len(datagram))
            checksum = internet_checksum(pseudo + datagram)
            if checksum == 0:
                checksum = 0xFFFF  # RFC 768: zero means "no checksum"
        return _UDP_STRUCT.pack(self.src_port, self.dst_port, self.length, checksum)

    @classmethod
    def unpack(cls, data: bytes) -> "UdpHeader":
        if len(data) < UDP_HEADER_LEN:
            raise PacketError(f"short UDP header: {len(data)} bytes")
        src_port, dst_port, length, checksum = _UDP_STRUCT.unpack(
            data[:UDP_HEADER_LEN]
        )
        return cls(src_port=src_port, dst_port=dst_port, length=length,
                   checksum=checksum)


@dataclass(slots=True)
class IcmpHeader:
    """An ICMP header (echo and time-exceeded style messages)."""

    icmp_type: int
    code: int = 0
    identifier: int = 0
    sequence: int = 0
    checksum: int | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.icmp_type <= 0xFF:
            raise PacketError(f"ICMP type out of range: {self.icmp_type}")
        if not 0 <= self.code <= 0xFF:
            raise PacketError(f"ICMP code out of range: {self.code}")

    @property
    def protocol(self) -> int:
        return IPPROTO_ICMP

    def pack(self, src: IPv4Address | None = None, dst: IPv4Address | None = None,
             payload: bytes = b"") -> bytes:
        checksum = self.checksum
        if checksum is None:
            header = _ICMP_STRUCT.pack(self.icmp_type, self.code, 0,
                                       self.identifier, self.sequence)
            checksum = internet_checksum(header + payload)
        return _ICMP_STRUCT.pack(self.icmp_type, self.code, checksum,
                                 self.identifier, self.sequence)

    @classmethod
    def unpack(cls, data: bytes) -> "IcmpHeader":
        if len(data) < ICMP_HEADER_LEN:
            raise PacketError(f"short ICMP header: {len(data)} bytes")
        icmp_type, code, checksum, identifier, sequence = _ICMP_STRUCT.unpack(
            data[:ICMP_HEADER_LEN]
        )
        return cls(icmp_type=icmp_type, code=code, identifier=identifier,
                   sequence=sequence, checksum=checksum)


L4Header = TcpHeader | UdpHeader | IcmpHeader


@dataclass(slots=True)
class Packet:
    """An IPv4 packet: IP header, optional L4 header, payload bytes.

    ``payload`` is the L4 payload (after the transport header).  The IP
    ``total_length`` is kept consistent by :meth:`build`.

    ``_wire`` caches the serialized bytes; it is populated only by
    :meth:`forwarded` (the forwarding hot path), which treats the packet
    as immutable from then on — per-hop materialization then patches the
    TTL byte and checksum instead of re-serializing (and re-checksumming
    the transport layer) from scratch.
    """

    ip: IPv4Header
    l4: L4Header | None = None
    payload: bytes = b""
    _wire: bytes | None = field(default=None, init=False, repr=False,
                                compare=False)
    _fwd_memo: dict | None = field(default=None, init=False, repr=False,
                                   compare=False)

    @classmethod
    def build(
        cls,
        ip: IPv4Header,
        l4: L4Header | None = None,
        payload: bytes = b"",
    ) -> "Packet":
        """Create a packet, fixing ``total_length`` and UDP length fields."""
        l4_len = 0
        if isinstance(l4, TcpHeader):
            l4_len = TCP_HEADER_LEN
        elif isinstance(l4, UdpHeader):
            l4_len = UDP_HEADER_LEN
            l4 = replace(l4, length=UDP_HEADER_LEN + len(payload))
        elif isinstance(l4, IcmpHeader):
            l4_len = ICMP_HEADER_LEN
        ip = replace(
            ip,
            total_length=IPV4_HEADER_LEN + l4_len + len(payload),
            protocol=l4.protocol if l4 is not None else ip.protocol,
        )
        return cls(ip=ip, l4=l4, payload=payload)

    def pack(self) -> bytes:
        """Serialize the full packet, computing any unset checksums."""
        wire = self._wire
        if wire is not None:
            return wire
        if self.l4 is None:
            return self.ip.pack() + self.payload
        l4_bytes = self.l4.pack(self.ip.src, self.ip.dst, self.payload)
        return self.ip.pack() + l4_bytes + self.payload

    @classmethod
    def unpack(cls, data: bytes, allow_truncated: bool = True) -> "Packet":
        """Parse wire bytes into a packet.

        With ``allow_truncated`` (the default — traces keep only 40 bytes),
        the payload may be shorter than ``total_length`` implies, and a
        missing or short L4 header yields ``l4=None`` with the raw bytes
        kept in ``payload``.
        """
        ip = IPv4Header.unpack(data)
        rest = data[IPV4_HEADER_LEN:]
        if not allow_truncated and len(data) < ip.total_length:
            raise PacketError(
                f"truncated packet: {len(data)} < total_length {ip.total_length}"
            )
        l4: L4Header | None = None
        payload = rest
        if ip.protocol == IPPROTO_TCP and len(rest) >= TCP_HEADER_LEN:
            l4 = TcpHeader.unpack(rest)
            payload = rest[TCP_HEADER_LEN:]
        elif ip.protocol == IPPROTO_UDP and len(rest) >= UDP_HEADER_LEN:
            l4 = UdpHeader.unpack(rest)
            payload = rest[UDP_HEADER_LEN:]
        elif ip.protocol == IPPROTO_ICMP and len(rest) >= ICMP_HEADER_LEN:
            l4 = IcmpHeader.unpack(rest)
            payload = rest[ICMP_HEADER_LEN:]
        return cls(ip=ip, l4=l4, payload=payload)

    @property
    def l4_checksum(self) -> int | None:
        """The transport checksum, the paper's payload-equality surrogate."""
        if self.l4 is None or self.l4.checksum is None:
            return None
        return self.l4.checksum

    def forwarded(self, hops: int = 1) -> "Packet":
        """The packet as it looks after traversing ``hops`` routers.

        TTL decremented and IP checksum patched with the RFC 1624
        incremental update — exactly the two fields the paper's replica
        definition masks, and exactly how deployed routers touch the
        header.  The base serialization is computed once and cached, so
        repeated materializations (one per tapped hop) cost two byte
        patches instead of a full serialize + checksum pass; the
        materialized replica itself is memoized per hop count, since a
        packet re-crossing taps at the same TTL is byte-for-byte the
        same replica.  Callers must treat the result as immutable, as
        they must treat any packet.
        """
        ttl = self.ip.ttl
        if ttl < hops:
            raise PacketError(f"TTL {ttl} cannot survive {hops} hops")
        memo = self._fwd_memo
        if memo is None:
            memo = {}
            self._fwd_memo = memo
        else:
            cached = memo.get(hops)
            if cached is not None:
                return cached
        wire = self._wire
        if wire is None:
            wire = self.pack()
            self._wire = wire
        new_ttl = ttl - hops
        protocol = self.ip.protocol
        new_checksum = incremental_update(
            (wire[10] << 8) | wire[11],
            (ttl << 8) | protocol,
            (new_ttl << 8) | protocol,
        )
        patched = bytearray(wire)
        patched[8] = new_ttl
        patched[10] = new_checksum >> 8
        patched[11] = new_checksum & 0xFF
        ip = self.ip
        # Direct construction instead of dataclasses.replace(): this runs
        # once per tapped hop and replace()'s field introspection costs
        # more than the whole byte patch above.
        new_ip = IPv4Header(
            src=ip.src,
            dst=ip.dst,
            ttl=new_ttl,
            protocol=protocol,
            identification=ip.identification,
            tos=ip.tos,
            total_length=ip.total_length,
            flags=ip.flags,
            fragment_offset=ip.fragment_offset,
            checksum=new_checksum,
        )
        packet = Packet(ip=new_ip, l4=self.l4, payload=self.payload)
        packet._wire = bytes(patched)
        memo[hops] = packet
        return packet


def icmp_time_exceeded(
    original: Packet,
    router_address: IPv4Address,
    identification: int = 0,
) -> Packet:
    """Build the ICMP time-exceeded message a router emits on TTL expiry.

    Carries the original IP header + first 8 payload bytes, per RFC 792.
    The paper observes these messages looping too (Sec. V-B), so the
    simulator generates them for realism.
    """
    quoted = original.ip.pack() + original.pack()[IPV4_HEADER_LEN:IPV4_HEADER_LEN + 8]
    icmp = IcmpHeader(icmp_type=ICMP_TIME_EXCEEDED, code=0)
    ip = IPv4Header(
        src=router_address,
        dst=original.ip.src,
        ttl=255,
        protocol=IPPROTO_ICMP,
        identification=identification,
    )
    return Packet.build(ip, icmp, quoted)
