"""Packet-trace containers with snaplen semantics.

A :class:`Trace` models what the paper's monitors produced: a time-ordered
sequence of records, each holding the capture timestamp, the on-wire length,
and the first ``snaplen`` bytes of the packet (40 in the Sprint traces — IP
header plus TCP/UDP header for option-free packets).
"""

from __future__ import annotations

import random
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.net.packet import Packet

SNAPLEN_40 = 40


class TraceError(ValueError):
    """Raised for malformed traces."""


@dataclass(slots=True, frozen=True)
class TraceRecord:
    """One captured packet.

    ``data`` holds at most ``snaplen`` bytes of the packet; ``wire_length``
    is the length of the packet on the wire (the IP total length), which may
    exceed ``len(data)``.
    """

    timestamp: float
    data: bytes
    wire_length: int

    def __post_init__(self) -> None:
        if self.wire_length < len(self.data):
            raise TraceError(
                f"wire_length {self.wire_length} < captured {len(self.data)}"
            )

    @classmethod
    def capture(
        cls, timestamp: float, packet: Packet, snaplen: int = SNAPLEN_40
    ) -> "TraceRecord":
        """Capture ``packet`` at ``timestamp``, truncating to ``snaplen``."""
        wire = packet.pack()
        return cls(timestamp=timestamp, data=wire[:snaplen], wire_length=len(wire))

    def parse(self) -> Packet:
        """Parse the captured bytes (tolerating snaplen truncation)."""
        return Packet.unpack(self.data, allow_truncated=True)

    @property
    def truncated(self) -> bool:
        return self.wire_length > len(self.data)


@dataclass(slots=True)
class Trace:
    """A time-ordered packet trace from a single monitored link."""

    records: list[TraceRecord] = field(default_factory=list)
    link_name: str = ""
    snaplen: int = SNAPLEN_40

    def append(self, record: TraceRecord) -> None:
        """Append a record; timestamps must be non-decreasing."""
        if self.records and record.timestamp < self.records[-1].timestamp:
            raise TraceError(
                f"out-of-order record: {record.timestamp} after "
                f"{self.records[-1].timestamp}"
            )
        self.records.append(record)

    def capture(self, timestamp: float, packet: Packet) -> None:
        """Capture a packet directly into the trace."""
        self.append(TraceRecord.capture(timestamp, packet, self.snaplen))

    def extend(self, records: Iterable[TraceRecord]) -> None:
        for record in records:
            self.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self.records[index]

    @property
    def empty(self) -> bool:
        return not self.records

    @property
    def start_time(self) -> float:
        if self.empty:
            raise TraceError("empty trace has no start time")
        return self.records[0].timestamp

    @property
    def end_time(self) -> float:
        if self.empty:
            raise TraceError("empty trace has no end time")
        return self.records[-1].timestamp

    @property
    def duration(self) -> float:
        """Trace duration in seconds (0.0 for traces of < 2 packets)."""
        if len(self.records) < 2:
            return 0.0
        return self.end_time - self.start_time

    @property
    def total_bytes(self) -> int:
        """Total on-wire bytes across all records."""
        return sum(record.wire_length for record in self.records)

    def average_bandwidth_bps(self) -> float:
        """Average link load in bits per second (Table I's "Avg BW")."""
        if self.duration <= 0:
            return 0.0
        return self.total_bytes * 8 / self.duration

    def time_slice(self, start: float, end: float) -> "Trace":
        """Records with ``start <= timestamp < end`` as a new trace."""
        timestamps = [record.timestamp for record in self.records]
        lo = bisect_left(timestamps, start)
        hi = bisect_left(timestamps, end)
        return Trace(records=self.records[lo:hi], link_name=self.link_name,
                     snaplen=self.snaplen)

    def filter(self, predicate: Callable[[TraceRecord], bool]) -> "Trace":
        """Records satisfying ``predicate`` as a new trace."""
        return Trace(
            records=[record for record in self.records if predicate(record)],
            link_name=self.link_name,
            snaplen=self.snaplen,
        )

    def sample(self, keep_one_in: int, rng: "random.Random") -> "Trace":
        """Uniform 1-in-N packet sampling, as monitoring hardware does.

        Sampling breaks replica chains (consecutive kept replicas of one
        stream have TTL deltas that are multiples of the loop size and
        far fewer observations), so loop detection degrades sharply —
        the experiment behind the paper's full-capture requirement.
        """
        if keep_one_in < 1:
            raise TraceError(f"keep_one_in must be >= 1: {keep_one_in}")
        if keep_one_in == 1:
            return Trace(records=list(self.records),
                         link_name=self.link_name, snaplen=self.snaplen)
        kept = [record for record in self.records
                if rng.randrange(keep_one_in) == 0]
        return Trace(records=kept, link_name=self.link_name,
                     snaplen=self.snaplen)

    @classmethod
    def merge(cls, traces: Sequence["Trace"], link_name: str = "") -> "Trace":
        """Merge several traces into one time-ordered trace."""
        merged = sorted(
            (record for trace in traces for record in trace.records),
            key=lambda record: record.timestamp,
        )
        snaplen = min((trace.snaplen for trace in traces), default=SNAPLEN_40)
        return cls(records=merged, link_name=link_name, snaplen=snaplen)
