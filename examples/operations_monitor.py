#!/usr/bin/env python3
"""An operations view: live loop monitoring with cause attribution.

Combines the library's extension features the way a NOC would use them:

* the **streaming detector** watches the monitor feed and reports each
  routing loop moments after it closes;
* each loop is **correlated** with the control-plane journal (the
  paper's future work: "complete BGP and IS-IS routing data") and
  attributed to its trigger;
* loops are **classified** transient vs persistent — including one
  genuinely persistent loop this script injects via a static-route
  misconfiguration;
* the loop's traffic impact (duplicate bytes on the link) is quantified.
"""

import random

from repro.core.correlate import correlate_loops
from repro.core.detector import LoopDetector
from repro.core.impact import utilization_overhead
from repro.core.persistent import (
    LoopClass,
    PersistenceCriteria,
    classify_loops,
    inject_static_route_conflict,
)
from repro.core.streaming import StreamingLoopDetector
from repro.net.addr import IPv4Prefix
from repro.sim import table1_scenario


def main() -> None:
    # A backbone with IGP flaps and BGP withdrawals...
    scenario = table1_scenario("backbone3", duration=200.0)
    run = scenario.build()

    # ...plus one misconfigured router pair: a static-route conflict on
    # the monitored link that no convergence will ever repair.  The
    # prefix is first announced normally; once BGP settles, the statics
    # are "fat-fingered" in at t=10.
    victim = IPv4Prefix.parse("203.0.113.0/24")
    from_router, to_router = run.monitor_direction
    run.bgp.advertise(victim, to_router)
    run.engine.scheduler.schedule_at(
        10.0,
        lambda: inject_static_route_conflict(
            run.bgp, run.topology, victim, from_router, to_router
        ),
    )
    # Send a trickle of traffic into the broken prefix.
    from repro.net.addr import IPv4Address
    from repro.net.packet import IPv4Header, Packet, UdpHeader

    rng = random.Random(9)
    far_ingress = run.topology.routers[len(run.topology.routers) // 2]
    for i in range(60):
        ip = IPv4Header(src=IPv4Address.parse("10.3.3.3"),
                        dst=victim.random_address(rng),
                        ttl=56, identification=i)
        packet = Packet.build(ip, UdpHeader(src_port=1234, dst_port=80),
                              b"doomed")
        run.engine.inject_at(12.0 + i * 3.0, packet, far_ingress)

    run.generator.run(0.0, 200.0)
    run.engine.scheduler.run(until=320.0)
    scenario._monitor.finalize()

    # Live detection (here replayed from the finished trace — the
    # streaming API consumes records one at a time either way).
    print("=== streaming loop reports ===")
    criteria = PersistenceCriteria(max_transient_duration=60.0)
    streaming = StreamingLoopDetector()
    loops = streaming.process_trace(run.trace)
    attributions = {id(a.loop): a
                    for a in correlate_loops(loops, run.journal)}
    for classified in classify_loops(loops, criteria):
        loop = classified.loop
        attribution = attributions[id(loop)]
        label = ("PERSISTENT" if classified.loop_class
                 is LoopClass.PERSISTENT else "transient")
        print(f"t={loop.start:7.1f}s  {str(loop.prefix):<18} "
              f"{loop.duration:7.2f}s  {loop.ttl_delta} routers  "
              f"{loop.replica_count:4d} replicas  "
              f"[{label}]  cause={attribution.cause.value}")

    # Sanity: the streaming result matches the offline detector.
    offline = LoopDetector().detect(run.trace)
    assert len(loops) == offline.loop_count

    overhead = utilization_overhead(run.trace, offline.streams)
    print(f"\nreplica overhead on the link: "
          f"{overhead.overhead_bytes} bytes "
          f"({overhead.overall_overhead_fraction:.3%} of traffic; "
          f"worst minute {overhead.peak_minute_overhead_fraction:.1%})")

    persistent = [c for c in classify_loops(loops, criteria)
                  if c.loop_class is LoopClass.PERSISTENT]
    print(f"\n{len(persistent)} persistent loop(s) flagged; reasons:")
    for classified in persistent:
        print(f"  {classified.loop.prefix}: {classified.reason}")


if __name__ == "__main__":
    main()
