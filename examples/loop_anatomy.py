#!/usr/bin/env python3
"""Anatomy of a transient routing loop — the paper's Figure 1, live.

Builds the paper's three-node scenario (a ring so there is a detour),
fails the egress link, and narrates the convergence window: which
routers' FIBs disagree, when each FIB updates, and what happens to
packets in flight — some loop and escape, some loop and expire.
Finally it shows the replica stream the monitor recorded, with the
decrementing TTL sequence that is the paper's detection signal.
"""

import random

from repro import LoopDetector
from repro.capture.monitor import LinkMonitor
from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.packet import IPv4Header, Packet, UdpHeader
from repro.routing import (
    BgpProcess,
    EventScheduler,
    FailureSchedule,
    ForwardingEngine,
    LinkStateProtocol,
    LinkStateTimers,
)
from repro.routing.topology import ring_topology

PREFIX = IPv4Prefix.parse("192.0.2.0/24")


def packet(ident: int, ttl: int = 40) -> Packet:
    ip = IPv4Header(src=IPv4Address.parse("10.7.7.7"),
                    dst=IPv4Address.parse("192.0.2.99"),
                    ttl=ttl, identification=ident)
    return Packet.build(ip, UdpHeader(src_port=4000, dst_port=53), b"data")


def main() -> None:
    rng = random.Random(3)
    topo = ring_topology(5, propagation_delay=0.003)
    scheduler = EventScheduler()
    # Slow FIB installs so the convergence window is easy to watch.
    timers = LinkStateTimers(fib_update_delay=0.8, fib_update_jitter=1.0)
    igp = LinkStateProtocol(topo, scheduler, timers=timers,
                            rng=random.Random(1))
    bgp = BgpProcess(topo, scheduler, igp, rng=random.Random(2))
    bgp.originate(PREFIX, "R0")  # the prefix exits the AS at R0
    igp.start()
    bgp.start()
    engine = ForwardingEngine(topo, scheduler, igp, bgp,
                              rng=random.Random(4),
                              record_crossings=True)
    # Monitor the detour link R3--R4: when R0--R4 fails, the loop forms
    # between R4 (updated, pointing back to R3) and R3 (stale, still
    # pointing at R4), so its replicas cross this link.
    monitor = LinkMonitor(engine, "R4", "R3")

    igp.on_fib_update(lambda router, now: print(
        f"  t={now:7.3f}  {router} installed a new FIB "
        f"(next hop to R0: {igp.next_hop(router, 'R0')})"
    ))

    print("steady state next hops toward R0:")
    for router in topo.routers:
        print(f"  {router}: {igp.next_hop(router, 'R0')}")

    print("\nt=10.0: the link R0--R4 fails")
    FailureSchedule().fail(10.0, "R0--R4").apply(topo, scheduler, igp)

    # A packet every 20 ms from R3 toward the prefix during convergence.
    t = 9.9
    for i in range(150):
        engine.inject_at(t, packet(i), "R3")
        t += 0.020

    scheduler.run(until=60.0)
    monitor.finalize()

    looped = [a for a in engine.audits if a.looped]
    escaped = [a for a in looped if a.fate.value == "delivered"]
    expired = [a for a in looped if a.fate.value == "ttl_expired"]
    print(f"\n{len(looped)} packets were caught in the transient loop:")
    print(f"  {len(escaped)} escaped when routing converged "
          f"(delayed but delivered)")
    print(f"  {len(expired)} ran out of TTL inside the loop (lost)")

    if looped:
        audit = looped[0]
        print(f"\npacket #{audit.packet_id}'s journey "
              f"(link crossings, on-wire TTL):")
        for when, link, direction, ttl in audit.crossings[:12]:
            print(f"  t={when:7.3f}  {direction:<12} ttl={ttl}")
        if len(audit.crossings) > 12:
            print(f"  ... {len(audit.crossings) - 12} more crossings")

    result = LoopDetector().detect(monitor.trace)
    print(f"\nthe monitor on R4->R3 saw {len(monitor.trace)} packets; "
          f"the detector found {result.stream_count} replica streams "
          f"merged into {result.loop_count} loop(s)")
    if result.streams:
        stream = result.streams[0]
        print(f"example replica stream (one packet, TTL delta "
              f"{stream.ttl_delta}):")
        print(f"  TTLs: {[replica.ttl for replica in stream.replicas]}")


if __name__ == "__main__":
    main()
