#!/usr/bin/env python3
"""Passive trace analysis vs. traceroute probing (the paper's Sec. III).

Runs one simulated backbone carrying both instruments: the passive
monitor + replica-stream detector, and a Paxson-style traceroute prober.
Shows why the paper built the passive method: sparse probing sessions
almost never straddle a transient loop's convergence window.
"""

import random

from repro import LoopDetector
from repro.baselines.probing import PingProbe
from repro.baselines.traceroute import TracerouteBaseline
from repro.capture.monitor import LinkMonitor
from repro.routing import (
    BgpProcess,
    EventScheduler,
    FailureSchedule,
    ForwardingEngine,
    LinkStateProtocol,
    LinkStateTimers,
)
from repro.routing.topology import ring_topology
from repro.traffic.flows import PrefixPopulation
from repro.traffic.generator import WorkloadGenerator


def main() -> None:
    topo = ring_topology(6, propagation_delay=0.002)
    scheduler = EventScheduler()
    igp = LinkStateProtocol(
        topo, scheduler,
        timers=LinkStateTimers(fib_update_delay=0.5, fib_update_jitter=1.5),
        rng=random.Random(1),
    )
    bgp = BgpProcess(topo, scheduler, igp, rng=random.Random(2))
    population = PrefixPopulation(egresses=["R0", "R3"], n_prefixes=50,
                                  rng=random.Random(3))
    for prefix, egress in population.originations():
        bgp.originate(prefix, egress)
    engine = ForwardingEngine(topo, scheduler, igp, bgp,
                              rng=random.Random(4),
                              icmp_time_exceeded_probability=1.0)

    # Failures will hit R0--R5, so transient loops form on the detour
    # link R4--R5; instruments sit where they can see them: the passive
    # monitor on R5->R4, the probers at R4 (their probes to R0-egress
    # prefixes traverse R4->R5->R0).
    monitor = LinkMonitor(engine, "R5", "R4")
    r0_prefixes = [prefix for prefix in population.prefixes
                   if population.primary_egress[prefix] == "R0"]
    targets = [prefix.random_address(random.Random(7))
               for prefix in r0_prefixes[:3]]
    tracer = TracerouteBaseline(engine, bgp, "R4", targets,
                                interval=120.0, max_ttl=12,
                                rng=random.Random(5))
    pinger = PingProbe(engine, "R4", targets, rate_pps=1.0,
                       bucket_width=10.0, rng=random.Random(8))

    igp.start()
    bgp.start()

    generator = WorkloadGenerator(engine, population, rate_pps=300.0,
                                  rng=random.Random(6), n_flows=300)
    generator.run(0.0, 300.0)
    tracer.run(1.0, 300.0)
    pinger.run(0.0, 300.0)

    schedule = FailureSchedule()
    for when in (40.0, 110.0, 180.0, 250.0):
        schedule.flap(when, "R0--R5", 12.0)
    schedule.apply(topo, scheduler, igp)

    scheduler.run(until=360.0)
    trace = monitor.finalize()

    detection = LoopDetector().detect(trace)
    gt_looped = sum(1 for audit in engine.audits if audit.looped)

    print("ground truth:      "
          f"{gt_looped} packets looped during 4 failure episodes")
    print("passive detector:  "
          f"{detection.stream_count} replica streams -> "
          f"{detection.loop_count} loops "
          f"(from {len(trace)} captured packets)")
    print("traceroute:        "
          f"{len(tracer.loop_observations())} loop sightings in "
          f"{len(tracer.sessions)} sessions "
          f"({tracer.probes_sent} probes sent)")

    summary = pinger.summary()
    print(f"ping prober:       {summary.sent} probes, "
          f"{1 - summary.delivery_fraction:.1%} lost overall, "
          f"worst 10-second bucket lost {summary.peak_loss:.0%} "
          f"(Labovitz-style loss spikes during convergence)")

    if len(tracer.loop_observations()) < detection.loop_count:
        print("\n=> the passive method found loops the prober missed, "
              "exactly the paper's argument.")


if __name__ == "__main__":
    main()
