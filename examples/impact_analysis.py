#!/usr/bin/env python3
"""Loss and delay impact of routing loops (the paper's Sec. VI).

Runs a backbone scenario, then quantifies what the loops did to the
network: per-minute loss attribution (loops are a tiny share of traffic
but can dominate the loss in a bad minute) and extra delay for packets
that escaped a loop (comparable to a full extra Internet path).
"""

import sys

from repro import LoopDetector
from repro.core.impact import (
    delay_impact_from_engine,
    escape_analysis,
    loss_impact_from_engine,
)
from repro.sim import table1_scenario


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "backbone1"
    run = table1_scenario(name).run()
    result = LoopDetector().detect(run.trace)

    loss = loss_impact_from_engine(run.engine)
    print(f"scenario {name}: {run.engine.packets_injected} packets, "
          f"{result.loop_count} loops detected on the monitored link")
    print(f"\noverall loss:        {loss.overall_loss_fraction:.4%}")
    print(f"loss caused by loops: {loss.overall_loop_loss_fraction:.4%} "
          f"(TTL expiry inside loops)")

    print("\nper-minute loss attribution "
          "(minutes where loops caused any loss):")
    ratios = loss.loop_loss_by_minute.ratio_series(loss.total_loss_by_minute)
    for bucket in sorted(ratios):
        loop_count = loss.loop_loss_by_minute.get(bucket)
        total = loss.total_loss_by_minute.get(bucket)
        print(f"  minute {bucket:3d}: {int(loop_count):5d} of "
              f"{int(total):5d} lost packets were loop-caused "
              f"({ratios[bucket]:.0%})")
    print(f"peak loop share of a minute's loss: "
          f"{loss.peak_loop_share_of_loss:.0%}")

    delay = delay_impact_from_engine(run.engine)
    print(f"\nnormal transit delay:     "
          f"{delay.mean_normal_delay * 1000:6.2f} ms")
    if delay.escaped_count:
        cdf = delay.extra_delay_cdf
        print(f"packets escaping a loop:  {delay.escaped_count}")
        print(f"their extra delay:        median "
              f"{cdf.median * 1000:6.1f} ms, p90 "
              f"{cdf.quantile(0.9) * 1000:6.1f} ms, max "
              f"{cdf.max * 1000:6.1f} ms")
    else:
        print("no packet escaped a loop in this run "
              "(all were lost to TTL expiry)")

    escapes = escape_analysis(result.streams)
    print(f"\nfrom the trace alone (no simulator ground truth): "
          f"{escapes.escape_fraction:.1%} of looping packets escaped")
    if not escapes.extra_delay_cdf.empty:
        print(f"their observable extra delay: median "
              f"{escapes.extra_delay_cdf.median * 1000:.1f} ms")


if __name__ == "__main__":
    main()
