#!/usr/bin/env python3
"""Backbone measurement study: reproduce the paper's analysis end to end.

Runs one of the Table I backbone scenarios (simulated Sprint-like
backbone with IGP flaps and BGP withdrawals), detects loops in the
monitor trace, prints every figure's statistic, and — something the
paper could not do — scores the detector against the simulator's
per-packet ground truth.

Usage::

    python examples/backbone_study.py [backbone1|backbone2|backbone3|backbone4]
"""

import sys

from repro import LoopDetector
from repro.core.analysis import (
    loop_duration_cdf,
    looped_traffic_type_distribution,
    spacing_cdf,
    stream_duration_cdf,
    stream_size_cdf,
    traffic_type_distribution,
    ttl_delta_distribution,
)
from repro.core.impact import (
    delay_impact_from_engine,
    escape_analysis,
    loss_impact_from_engine,
)
from repro.core.report import (
    render_cdf,
    render_destination_classes,
    render_distribution,
    render_summary,
    render_traffic_types,
)
from repro.sim import table1_scenario


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "backbone3"
    duration = float(sys.argv[2]) if len(sys.argv) > 2 else 150.0

    print(f"simulating {name} for {duration:.0f} s ...")
    run = table1_scenario(name, duration=duration).run()
    result = LoopDetector().detect(run.trace)

    print()
    print(render_summary(result))
    print(f"ground truth: {run.ground_truth_looped} packets looped "
          f"somewhere in the AS; {run.ground_truth_expired} expired")

    streams = result.streams
    print()
    print(render_distribution(ttl_delta_distribution(streams),
                              "Figure 2 — TTL delta"))
    print()
    print(render_cdf(stream_size_cdf(streams), "Figure 3 — stream size"))
    print()
    print(render_cdf(spacing_cdf(streams),
                     "Figure 4 — inter-replica spacing", unit=" s"))
    print()
    print(render_traffic_types(traffic_type_distribution(run.trace),
                               "Figure 5 — all traffic"))
    print()
    print(render_traffic_types(looped_traffic_type_distribution(streams),
                               "Figure 6 — looped traffic"))
    print()
    print(render_destination_classes(result))
    print()
    print(render_cdf(stream_duration_cdf(streams),
                     "Figure 8 — stream duration", unit=" s"))
    print()
    print(render_cdf(loop_duration_cdf(result.loops),
                     "Figure 9 — loop duration", unit=" s"))

    escapes = escape_analysis(streams)
    print(f"\nescape analysis (from the trace alone): "
          f"{escapes.escaped}/{escapes.total_streams} escaped "
          f"({escapes.escape_fraction:.1%})")

    loss = loss_impact_from_engine(run.engine)
    print(f"loss impact: loops caused {loss.overall_loop_loss_fraction:.4%} "
          f"of all packets to be lost; in the worst minute they were "
          f"{loss.peak_loop_share_of_loss:.0%} of the loss")

    delay = delay_impact_from_engine(run.engine)
    if delay.escaped_count:
        print(f"delay impact: {delay.escaped_count} packets escaped loops "
              f"with {delay.mean_extra_delay * 1000:.0f} ms mean extra "
              f"delay (normal transit: "
              f"{delay.mean_normal_delay * 1000:.1f} ms)")


if __name__ == "__main__":
    main()
