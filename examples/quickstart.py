#!/usr/bin/env python3
"""Quickstart: detect routing loops in a packet trace.

Builds a small trace containing one planted routing loop (plus ordinary
background traffic and a link-layer duplicate that must NOT be detected),
runs the three-step detector from the paper, and walks through the
result.  Also shows the pcap round trip, which is how you would apply
the detector to a real capture::

    tcpdump -s 40 -w link.pcap            # capture like the paper did
    repro-loops detect link.pcap --figures
"""

import random
import tempfile
from pathlib import Path

from repro import LoopDetector, read_pcap, write_pcap
from repro.net.addr import IPv4Prefix
from repro.traffic.synthetic import SyntheticTraceBuilder


def build_trace():
    """A 60-second trace: background + one loop + one SONET duplicate."""
    builder = SyntheticTraceBuilder(rng=random.Random(42))
    builder.add_background(
        2_000, 0.0, 60.0,
        prefixes=[IPv4Prefix.parse("198.51.100.0/24"),
                  IPv4Prefix.parse("203.0.113.0/24")],
    )
    # A transient loop between two routers (TTL delta 2) catches four
    # packets to 192.0.2.0/24, each crossing the link every ~12 ms.
    builder.add_loop(
        start=30.0,
        prefix=IPv4Prefix.parse("192.0.2.0/24"),
        ttl_delta=2,
        n_packets=4,
        spacing=0.012,
        packet_gap=0.040,
        entry_ttl=58,
    )
    # A link-layer artifact: two byte-identical copies (same TTL).  The
    # validation step must not confuse this with a loop.
    builder.add_duplicate_pair(45.0)
    return builder.build(link_name="example-link")


def main() -> None:
    trace = build_trace()
    print(f"trace: {len(trace)} records over {trace.duration:.1f} s "
          f"({trace.average_bandwidth_bps() / 1e3:.0f} kbit/s)")

    result = LoopDetector().detect(trace)
    print(f"candidate replica streams: {len(result.candidate_streams)}")
    print(f"validated replica streams: {result.stream_count}")
    print(f"merged routing loops:      {result.loop_count}")

    for loop in result.loops:
        print(f"\nloop toward {loop.prefix}:")
        print(f"  window   : {loop.start:.3f} .. {loop.end:.3f} s "
              f"({loop.duration * 1000:.0f} ms)")
        print(f"  size     : {loop.ttl_delta} routers (TTL delta)")
        print(f"  packets  : {loop.stream_count} caught, "
              f"{loop.replica_count} replicas on the link")
        stream = loop.streams[0]
        ttls = [replica.ttl for replica in stream.replicas]
        print(f"  one packet's TTL sequence: {ttls}")

    # Round-trip through pcap, as for a real capture.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "example.pcap"
        write_pcap(trace, path)
        reloaded = read_pcap(path)
        again = LoopDetector().detect(reloaded)
        assert again.loop_count == result.loop_count
        print(f"\npcap round trip: {path.name} -> "
              f"{again.loop_count} loop(s) re-detected")


if __name__ == "__main__":
    main()
