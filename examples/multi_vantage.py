#!/usr/bin/env python3
"""Multi-vantage measurement: several taps, one network, merged events.

The paper's traces were gathered in parallel on multiple links and
analyzed per link.  This example monitors three link directions of a
custom topology (loaded from JSON, as an operator would describe their
own backbone), detects loops per vantage, then merges the sightings
into AS-wide loop events — showing how much single-link analysis
undercounts an event's reach and how a two-router loop appears
symmetrically on both directions of its link.
"""

import json
import random
import tempfile
from pathlib import Path

from repro.capture.multimonitor import MonitorArray
from repro.core.vantage import (
    detect_on_all,
    merge_loop_events,
    summarize_vantages,
)
from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.packet import IPv4Header, Packet, UdpHeader
from repro.routing import (
    BgpProcess,
    EventScheduler,
    FailureSchedule,
    ForwardingEngine,
    LinkStateProtocol,
    LinkStateTimers,
)
from repro.routing.topofile import load_topology

PREFIX = IPv4Prefix.parse("192.0.2.0/24")

TOPOLOGY_JSON = {
    "routers": ["sea", "sfo", "den", "chi", "nyc", "dca"],
    "links": [
        {"a": "sea", "b": "sfo", "cost": 1, "propagation_delay": 0.004},
        {"a": "sfo", "b": "den", "cost": 2, "propagation_delay": 0.006},
        {"a": "den", "b": "chi", "cost": 2, "propagation_delay": 0.005},
        {"a": "chi", "b": "nyc", "cost": 1, "propagation_delay": 0.004},
        {"a": "nyc", "b": "dca", "cost": 1, "propagation_delay": 0.001},
        {"a": "dca", "b": "sea", "cost": 4, "propagation_delay": 0.014},
        {"a": "den", "b": "dca", "cost": 9, "propagation_delay": 0.008},
    ],
}


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "backbone.json"
        path.write_text(json.dumps(TOPOLOGY_JSON))
        topo = load_topology(path)
    print(f"loaded topology: {len(topo.routers)} routers, "
          f"{len(topo.links)} links")

    scheduler = EventScheduler()
    igp = LinkStateProtocol(
        topo, scheduler,
        timers=LinkStateTimers(fib_update_delay=0.6, fib_update_jitter=1.5),
        rng=random.Random(1),
    )
    bgp = BgpProcess(topo, scheduler, igp, rng=random.Random(2))
    bgp.originate(PREFIX, "nyc")  # the prefix peers at New York
    igp.start()
    bgp.start()
    engine = ForwardingEngine(topo, scheduler, igp, bgp,
                              rng=random.Random(3))

    # When dca--nyc fails, dca's detour to the prefix goes back through
    # sea (the den chord is too expensive): the transient loop forms on
    # sea--dca.  Taps on both its directions, plus one on chi--nyc to
    # watch the healthy path.
    array = MonitorArray(engine, [("sea", "dca"), ("dca", "sea"),
                                  ("chi", "nyc")])

    # Fail nyc--dca repeatedly: dca-side traffic to the prefix detours,
    # and convergence windows loop on sea--dca.
    schedule = FailureSchedule()
    for i in range(6):
        schedule.flap(20.0 + i * 30.0, "dca--nyc", 12.0)
    schedule.apply(topo, scheduler, igp)

    rng = random.Random(4)
    t = 0.5
    for i in range(10000):
        ip = IPv4Header(src=IPv4Address.parse("10.8.0.7"),
                        dst=PREFIX.random_address(rng), ttl=60,
                        identification=i & 0xFFFF)
        packet = Packet.build(ip, UdpHeader(src_port=4000, dst_port=80),
                              b"pay")
        engine.inject_at(t, packet, rng.choice(("dca", "sea", "den")))
        t += 0.02
    scheduler.run(until=260.0)

    traces = array.finalize()
    results = detect_on_all(traces)
    print("\nper-vantage detections:")
    for vantage, result in results.items():
        print(f"  {vantage:<10} {len(result.trace):6d} records  "
              f"{result.stream_count:3d} streams  "
              f"{result.loop_count:2d} loops")

    events = merge_loop_events(results)
    summary = summarize_vantages(results)
    print(f"\nAS-wide loop events after merging: {summary.events} "
          f"(naive per-link total: {summary.naive_total}; "
          f"overcount x{summary.overcount_factor:.1f})")
    for event in events:
        print(f"  {event.prefix}  t={event.start:6.1f}s  "
              f"{event.duration:5.2f}s  seen by {event.vantage_count} "
              f"vantage(s): {', '.join(event.vantages)}")


if __name__ == "__main__":
    main()
